// Package store implements the SKV/Redis keyspace: numbered databases
// mapping keys to typed objects, key expiration (lazy plus an active
// sampling cycle), and the command table covering the string, key, list,
// hash, set, sorted-set and server command families.
//
// The store is transport-agnostic and time-agnostic: the embedding server
// injects a millisecond clock (virtual time inside the simulation, wall
// time in cmd/skv-server), and commands return RESP-encoded replies plus a
// dirty flag that drives replication (paper §III-C: "Host-KV first checks
// whether the command can change the value of the data in the storage").
package store

import (
	"fmt"
	"math/rand"
	"strings"

	"skv/internal/dict"
	"skv/internal/obj"
	"skv/internal/resp"
)

// Clock supplies the current time in milliseconds since an arbitrary epoch.
type Clock func() int64

// DB is one shard slice of one numbered keyspace: the unit a single shard
// core owns exclusively. An unsharded store has exactly one slice per
// database.
type DB struct {
	dict    *dict.Dict // key -> *obj.Object
	expires *dict.Dict // key -> expireAt (ms)
}

// Store is the full multi-database keyspace plus the command dispatcher.
// Internally every numbered database is partitioned into NumShards disjoint
// slices by key hash; with one shard (the default) the layout and every
// RNG draw are bit-for-bit the pre-sharding single-slice store.
type Store struct {
	dbs    [][]*DB // dbs[dbi][shard]
	shards int
	// shardRnd seeds each shard's dict pairs (and their flush-time
	// replacements) independently, so a shard's structures never depend on
	// what other shards did. With shards == 1 it aliases rnd to preserve
	// the legacy draw sequence.
	shardRnd []*rand.Rand
	clock    Clock
	rnd      *rand.Rand

	// Dirty counts dataset modifications since startup (Redis server.dirty);
	// the server layer uses deltas to decide propagation.
	Dirty int64

	// InfoProvider, when non-nil, supplies the embedding server's INFO
	// sections (Server, Clients, Replication, Stats, ...). The store appends
	// its own Keyspace section — and a minimal Stats fallback when no
	// provider is installed — in InfoSections.
	InfoProvider func() []InfoSection
}

// InfoSection is one "# Name" block of the INFO command's reply.
type InfoSection struct {
	Name  string
	Lines []string
}

// InfoSections assembles the full ordered section list for INFO: the
// provider's sections first (the server layer's view), then the store's
// Keyspace. Without a provider a minimal Stats section preserves the
// dirty-counter surface.
func (s *Store) InfoSections() []InfoSection {
	var secs []InfoSection
	if s.InfoProvider != nil {
		secs = s.InfoProvider()
	} else {
		secs = append(secs, InfoSection{Name: "Stats", Lines: []string{fmt.Sprintf("dirty:%d", s.Dirty)}})
	}
	var keyspace []string
	for i := range s.dbs {
		if n := s.DBSize(i); n > 0 {
			keyspace = append(keyspace, fmt.Sprintf("db%d:keys=%d", i, n))
		}
	}
	return append(secs, InfoSection{Name: "Keyspace", Lines: keyspace})
}

// Options configures a Store. The zero value of every field is a usable
// default: 16 databases, one shard, seed 0, a clock pinned at zero.
type Options struct {
	// DBs is the number of numbered databases (SELECT targets). <= 0
	// means the Redis default of 16.
	DBs int
	// Shards partitions every database into this many disjoint key-hash
	// slices, one per owning core. <= 1 reproduces the unsharded store
	// exactly, including the order of every RNG draw.
	Shards int
	// Seed drives every internal randomized structure (dict seeds, expiry
	// sampling, rehash stepping).
	Seed int64
	// Clock supplies milliseconds; nil pins the store at t=0 (fine for
	// tests that never touch expiration).
	Clock Clock
}

// New creates a store from Options; see Options for field defaults.
func New(o Options) *Store {
	n, shards := o.DBs, o.Shards
	seed, clock := o.Seed, o.Clock
	if n <= 0 {
		n = 16
	}
	if shards <= 0 {
		shards = 1
	}
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	s := &Store{clock: clock, rnd: rand.New(rand.NewSource(seed)), shards: shards}
	s.shardRnd = make([]*rand.Rand, shards)
	if shards == 1 {
		// Alias, don't re-seed: the legacy store drew dict seeds straight
		// from s.rnd, and that exact sequence is a determinism contract.
		s.shardRnd[0] = s.rnd
	} else {
		for i := range s.shardRnd {
			s.shardRnd[i] = rand.New(rand.NewSource(s.rnd.Int63()))
		}
	}
	s.dbs = make([][]*DB, n)
	for i := range s.dbs {
		s.dbs[i] = make([]*DB, shards)
		for si := range s.dbs[i] {
			r := s.shardRnd[si]
			s.dbs[i][si] = &DB{dict: dict.New(r.Int63()), expires: dict.New(r.Int63())}
		}
	}
	return s
}

// NumDBs reports the database count.
func (s *Store) NumDBs() int { return len(s.dbs) }

// NumShards reports how many key-hash shards each database is split into.
func (s *Store) NumShards() int { return s.shards }

// Seed returns a fresh deterministic seed for nested structures.
func (s *Store) seed() int64 { return s.rnd.Int63() }

// NewSeed hands out a deterministic seed for object construction outside
// the package (the RDB loader needs one per container object).
func (s *Store) NewSeed() int64 { return s.seed() }

// ShardOfKey maps a key to its shard index with FNV-1a — the single hash
// both the store's internal routing and the server's dispatch plane use, so
// they always agree on which shard core owns a key.
func ShardOfKey(key []byte, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int(h % uint64(shards))
}

// shardOfString is ShardOfKey for string keys (no allocation either way).
func shardOfString(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % uint64(shards))
}

// KeyShard reports which shard owns key in this store.
func (s *Store) KeyShard(key []byte) int { return ShardOfKey(key, s.shards) }

// shardDB resolves the shard slice owning key within database dbi; every
// single-key access funnels through here.
func (s *Store) shardDB(dbi int, key string) *DB {
	return s.dbs[dbi][shardOfString(key, s.shards)]
}

// expired reports whether key is past its TTL.
func (db *DB) expired(key string, now int64) bool {
	v, ok := db.expires.Get(key)
	if !ok {
		return false
	}
	return now >= v.(int64)
}

// lookup returns the live object for key, applying lazy expiration.
func (s *Store) lookup(dbi int, key string) *obj.Object {
	db := s.shardDB(dbi, key)
	if db.expired(key, s.clock()) {
		db.dict.Delete(key)
		db.expires.Delete(key)
		s.Dirty++
		return nil
	}
	v, ok := db.dict.Get(key)
	if !ok {
		return nil
	}
	return v.(*obj.Object)
}

// Has reports whether a key is live (applying lazy expiration) — the
// presence probe behind the migration plane's ASK/TRYAGAIN decision.
func (s *Store) Has(dbi int, key string) bool {
	return s.lookup(dbi, key) != nil
}

// setKey stores an object and clears any previous TTL (SET semantics).
func (s *Store) setKey(dbi int, key string, o *obj.Object) {
	db := s.shardDB(dbi, key)
	db.dict.Set(key, o)
	db.expires.Delete(key)
	s.Dirty++
}

// deleteKey removes a key and its TTL; reports whether it existed.
func (s *Store) deleteKey(dbi int, key string) bool {
	db := s.shardDB(dbi, key)
	if s.lookup(dbi, key) == nil {
		return false
	}
	db.dict.Delete(key)
	db.expires.Delete(key)
	s.Dirty++
	return true
}

// setExpire sets the absolute expiry (ms) for an existing key.
func (s *Store) setExpire(dbi int, key string, at int64) {
	s.shardDB(dbi, key).expires.Set(key, at)
	s.Dirty++
}

// ttlMillis reports the remaining TTL in ms: -2 missing key, -1 no TTL.
func (s *Store) ttlMillis(dbi int, key string) int64 {
	if s.lookup(dbi, key) == nil {
		return -2
	}
	v, ok := s.shardDB(dbi, key).expires.Get(key)
	if !ok {
		return -1
	}
	rem := v.(int64) - s.clock()
	if rem < 0 {
		rem = 0
	}
	return rem
}

// ActiveExpireCycle samples up to sample volatile keys per shard slice per
// database and deletes the expired ones (the serverCron job the paper's
// Fig 4 time events include). Returns the number of keys expired.
func (s *Store) ActiveExpireCycle(sample int) int {
	total := 0
	for si := 0; si < s.shards; si++ {
		total += s.ActiveExpireCycleShard(si, sample)
	}
	return total
}

// ActiveExpireCycleShard runs one expiry sampling pass over shard si of
// every database — the per-shard cron job in sharded mode, where each shard
// core expires only the keys it owns.
func (s *Store) ActiveExpireCycleShard(si, sample int) int {
	now := s.clock()
	total := 0
	for dbi := range s.dbs {
		db := s.dbs[dbi][si]
		for i := 0; i < sample; i++ {
			key, ok := db.expires.RandomKey()
			if !ok {
				break
			}
			if db.expired(key, now) {
				s.deleteKey(dbi, key)
				total++
			}
		}
	}
	return total
}

// RehashStep donates incremental-rehash work to every database's tables
// (called from the server cron).
func (s *Store) RehashStep(n int) {
	for si := 0; si < s.shards; si++ {
		s.RehashStepShard(si, n)
	}
}

// RehashStepShard donates rehash work to shard si's tables only (the
// per-shard cron job in sharded mode).
func (s *Store) RehashStepShard(si, n int) {
	for dbi := range s.dbs {
		db := s.dbs[dbi][si]
		db.dict.RehashStep(n)
		db.expires.RehashStep(n)
	}
}

// DBSize reports the key count of a database, summed across its shards.
func (s *Store) DBSize(dbi int) int {
	n := 0
	for _, db := range s.dbs[dbi] {
		n += db.dict.Len()
	}
	return n
}

// ShardSize reports the key count shard si holds within database dbi
// (per-shard balance instrumentation).
func (s *Store) ShardSize(dbi, si int) int { return s.dbs[dbi][si].dict.Len() }

// EachEntry iterates every live key of every database, shard by shard (for
// RDB dumps): expireAt is 0 when the key has no TTL. Keys whose expiry is
// already in the past are logically dead — only lazy deletion hasn't caught
// up with them — so they are skipped rather than dumped; emitting them
// would resurrect expired keys on a full-syncing slave.
func (s *Store) EachEntry(fn func(dbi int, key string, o *obj.Object, expireAt int64) bool) {
	now := s.clock()
	for dbi := range s.dbs {
		for _, db := range s.dbs[dbi] {
			stop := false
			db.dict.Each(func(k string, v any) bool {
				var exp int64
				if e, ok := db.expires.Get(k); ok {
					exp = e.(int64)
				}
				if exp != 0 && exp <= now {
					return true // logically expired: never dump
				}
				if !fn(dbi, k, v.(*obj.Object), exp) {
					stop = true
					return false
				}
				return true
			})
			if stop {
				return
			}
		}
	}
}

// SetRaw installs an object directly (RDB load path), with optional expiry
// (0 = none). Does not count as dirty.
func (s *Store) SetRaw(dbi int, key string, o *obj.Object, expireAt int64) {
	db := s.shardDB(dbi, key)
	db.dict.Set(key, o)
	if expireAt > 0 {
		db.expires.Set(key, expireAt)
	} else {
		db.expires.Delete(key)
	}
}

// flushDB replaces every shard slice of one database with fresh tables,
// each seeded from its own shard's RNG.
func (s *Store) flushDB(dbi int) {
	for si := range s.dbs[dbi] {
		r := s.shardRnd[si]
		s.dbs[dbi][si] = &DB{dict: dict.New(r.Int63()), expires: dict.New(r.Int63())}
	}
}

// FlushAll erases every database.
func (s *Store) FlushAll() {
	for i := range s.dbs {
		s.flushDB(i)
	}
	s.Dirty++
}

// ---- Command dispatch ----

// Command is the exported descriptor of one command-table entry: the single
// source of truth the server dispatch, replication filtering, and (future)
// sharding key extraction all read. Descriptors are registered once at init
// and never mutated.
type Command struct {
	// Name is the canonical lowercase command name.
	Name string
	// Arity as in Redis: positive = exact argc, negative = minimum argc.
	Arity int
	// Write marks commands that may modify the dataset (the Host-KV check
	// from §III-C, made before involving the SmartNIC).
	Write bool
	// FirstKey is the argv index of the first key argument, 0 when the
	// command addresses no key (PING, SCAN, FLUSHALL, ...). The dispatch
	// plane routes commands to shards by these keys.
	FirstKey int
	// LastKey is the argv index of the last key argument; -1 means "to the
	// end of argv" (DEL, MSET, ...). Meaningless when FirstKey is 0.
	LastKey int
	// KeyStep is the argv stride between consecutive keys (2 for MSET's
	// key/value pairs, else 1).
	KeyStep int
	// Server marks commands the embedding server layer handles itself
	// (SELECT, PSYNC, WAIT, ...); the store rejects them as unknown.
	Server bool

	handler func(s *Store, dbi int, argv [][]byte) ([]byte, bool)
}

// EachKey invokes fn for every key argument of argv according to the
// descriptor's FirstKey/LastKey/KeyStep pattern. The dispatch plane uses it
// to compute the shard set a command touches.
func (c *Command) EachKey(argv [][]byte, fn func(key []byte)) {
	if c.FirstKey <= 0 {
		return
	}
	last := c.LastKey
	if last < 0 || last >= len(argv) {
		last = len(argv) - 1
	}
	step := c.KeyStep
	if step <= 0 {
		step = 1
	}
	for i := c.FirstKey; i <= last; i += step {
		fn(argv[i])
	}
}

// FirstKeyArg extracts the command's first key from argv, or nil when the
// command has none (or argv is too short).
func (c *Command) FirstKeyArg(argv [][]byte) []byte {
	if c.FirstKey <= 0 || c.FirstKey >= len(argv) {
		return nil
	}
	return argv[c.FirstKey]
}

// maxCmdLen bounds the stack buffer used for allocation-free
// case-insensitive lookups; no registered name comes close.
const maxCmdLen = 32

// LookupCommand resolves a command name (any case) to its descriptor, or
// nil. The lookup never allocates: the common already-lowercase case is a
// direct map probe, and mixed case folds into a stack buffer.
func LookupCommand(name []byte) *Command {
	if c, ok := commandTable[string(name)]; ok {
		return c
	}
	if len(name) > maxCmdLen {
		return nil
	}
	var buf [maxCmdLen]byte
	return commandTable[string(foldLower(buf[:len(name)], name))]
}

// LookupCommandName is LookupCommand for string-typed names.
func LookupCommandName(name string) *Command {
	if c, ok := commandTable[name]; ok {
		return c
	}
	if len(name) > maxCmdLen {
		return nil
	}
	var buf [maxCmdLen]byte
	dst := buf[:len(name)]
	for i := 0; i < len(name); i++ {
		ch := name[i]
		if 'A' <= ch && ch <= 'Z' {
			ch += 'a' - 'A'
		}
		dst[i] = ch
	}
	return commandTable[string(dst)]
}

// foldLower writes the ASCII-lowercased src into dst and returns dst.
func foldLower(dst, src []byte) []byte {
	for i, ch := range src {
		if 'A' <= ch && ch <= 'Z' {
			ch += 'a' - 'A'
		}
		dst[i] = ch
	}
	return dst
}

// Exec runs one command against database dbi. It returns the RESP-encoded
// reply and whether the dataset was modified (the replication trigger).
func (s *Store) Exec(dbi int, argv [][]byte) (reply []byte, dirty bool) {
	if len(argv) == 0 {
		return resp.AppendError(nil, "ERR empty command"), false
	}
	return s.Dispatch(LookupCommand(argv[0]), dbi, argv)
}

// Dispatch runs a command already resolved by LookupCommand (nil means
// unknown), saving the embedding server a second table probe.
func (s *Store) Dispatch(cmd *Command, dbi int, argv [][]byte) (reply []byte, dirty bool) {
	if len(argv) == 0 {
		return resp.AppendError(nil, "ERR empty command"), false
	}
	if cmd == nil || cmd.Server {
		name := strings.ToLower(string(argv[0]))
		return resp.AppendError(nil, fmt.Sprintf("ERR unknown command '%s'", name)), false
	}
	if (cmd.Arity > 0 && len(argv) != cmd.Arity) || (cmd.Arity < 0 && len(argv) < -cmd.Arity) {
		return resp.AppendError(nil, fmt.Sprintf("ERR wrong number of arguments for '%s' command", cmd.Name)), false
	}
	if dbi < 0 || dbi >= len(s.dbs) {
		return resp.AppendError(nil, "ERR invalid DB index"), false
	}
	return cmd.handler(s, dbi, argv)
}

// IsWriteCommand reports whether the named command may modify the dataset.
func IsWriteCommand(name string) bool {
	c := LookupCommandName(name)
	return c != nil && c.Write
}

// KnownCommand reports whether the store can execute the command (server
// level commands like SELECT are not the store's to run).
func KnownCommand(name string) bool {
	c := LookupCommandName(name)
	return c != nil && !c.Server
}

// EachCommand iterates every registered descriptor (introspection, tests).
func EachCommand(fn func(*Command)) {
	for _, c := range commandTable {
		fn(c)
	}
}

// Common reply fragments.
var (
	replyOK        = resp.AppendSimple(nil, "OK")
	replyWrongType = resp.AppendError(nil, "WRONGTYPE Operation against a key holding the wrong kind of value")
	replyNotInt    = resp.AppendError(nil, "ERR value is not an integer or out of range")
	replyNotFloat  = resp.AppendError(nil, "ERR value is not a valid float")
	replySyntax    = resp.AppendError(nil, "ERR syntax error")
)

func ok() []byte        { return append([]byte(nil), replyOK...) }
func wrongType() []byte { return append([]byte(nil), replyWrongType...) }
func notInt() []byte    { return append([]byte(nil), replyNotInt...) }
func notFloat() []byte  { return append([]byte(nil), replyNotFloat...) }
func syntaxErr() []byte { return append([]byte(nil), replySyntax...) }
