// Package store implements the SKV/Redis keyspace: numbered databases
// mapping keys to typed objects, key expiration (lazy plus an active
// sampling cycle), and the command table covering the string, key, list,
// hash, set, sorted-set and server command families.
//
// The store is transport-agnostic and time-agnostic: the embedding server
// injects a millisecond clock (virtual time inside the simulation, wall
// time in cmd/skv-server), and commands return RESP-encoded replies plus a
// dirty flag that drives replication (paper §III-C: "Host-KV first checks
// whether the command can change the value of the data in the storage").
package store

import (
	"fmt"
	"math/rand"
	"strings"

	"skv/internal/dict"
	"skv/internal/obj"
	"skv/internal/resp"
)

// Clock supplies the current time in milliseconds since an arbitrary epoch.
type Clock func() int64

// DB is one numbered keyspace.
type DB struct {
	dict    *dict.Dict // key -> *obj.Object
	expires *dict.Dict // key -> expireAt (ms)
}

// Store is the full multi-database keyspace plus the command dispatcher.
type Store struct {
	dbs   []*DB
	clock Clock
	rnd   *rand.Rand

	// Dirty counts dataset modifications since startup (Redis server.dirty);
	// the server layer uses deltas to decide propagation.
	Dirty int64

	// InfoProvider, when non-nil, supplies the embedding server's INFO
	// sections (Server, Clients, Replication, Stats, ...). The store appends
	// its own Keyspace section — and a minimal Stats fallback when no
	// provider is installed — in InfoSections.
	InfoProvider func() []InfoSection
}

// InfoSection is one "# Name" block of the INFO command's reply.
type InfoSection struct {
	Name  string
	Lines []string
}

// InfoSections assembles the full ordered section list for INFO: the
// provider's sections first (the server layer's view), then the store's
// Keyspace. Without a provider a minimal Stats section preserves the
// dirty-counter surface.
func (s *Store) InfoSections() []InfoSection {
	var secs []InfoSection
	if s.InfoProvider != nil {
		secs = s.InfoProvider()
	} else {
		secs = append(secs, InfoSection{Name: "Stats", Lines: []string{fmt.Sprintf("dirty:%d", s.Dirty)}})
	}
	var keyspace []string
	for i := range s.dbs {
		if n := s.DBSize(i); n > 0 {
			keyspace = append(keyspace, fmt.Sprintf("db%d:keys=%d", i, n))
		}
	}
	return append(secs, InfoSection{Name: "Keyspace", Lines: keyspace})
}

// New creates a store with n databases. All internal randomized structures
// derive from seed.
func New(n int, seed int64, clock Clock) *Store {
	if n <= 0 {
		n = 1
	}
	s := &Store{clock: clock, rnd: rand.New(rand.NewSource(seed))}
	s.dbs = make([]*DB, n)
	for i := range s.dbs {
		s.dbs[i] = &DB{dict: dict.New(s.rnd.Int63()), expires: dict.New(s.rnd.Int63())}
	}
	return s
}

// NumDBs reports the database count.
func (s *Store) NumDBs() int { return len(s.dbs) }

// Seed returns a fresh deterministic seed for nested structures.
func (s *Store) seed() int64 { return s.rnd.Int63() }

// NewSeed hands out a deterministic seed for object construction outside
// the package (the RDB loader needs one per container object).
func (s *Store) NewSeed() int64 { return s.seed() }

// db panics on out-of-range index; the server validates SELECT.
func (s *Store) db(i int) *DB { return s.dbs[i] }

// newDictPair allocates a dict seeded from the store's RNG.
func newDictPair(s *Store) *dict.Dict { return dict.New(s.seed()) }

// expired reports whether key is past its TTL.
func (db *DB) expired(key string, now int64) bool {
	v, ok := db.expires.Get(key)
	if !ok {
		return false
	}
	return now >= v.(int64)
}

// lookup returns the live object for key, applying lazy expiration.
func (s *Store) lookup(dbi int, key string) *obj.Object {
	db := s.db(dbi)
	if db.expired(key, s.clock()) {
		db.dict.Delete(key)
		db.expires.Delete(key)
		s.Dirty++
		return nil
	}
	v, ok := db.dict.Get(key)
	if !ok {
		return nil
	}
	return v.(*obj.Object)
}

// setKey stores an object and clears any previous TTL (SET semantics).
func (s *Store) setKey(dbi int, key string, o *obj.Object) {
	db := s.db(dbi)
	db.dict.Set(key, o)
	db.expires.Delete(key)
	s.Dirty++
}

// deleteKey removes a key and its TTL; reports whether it existed.
func (s *Store) deleteKey(dbi int, key string) bool {
	db := s.db(dbi)
	if s.lookup(dbi, key) == nil {
		return false
	}
	db.dict.Delete(key)
	db.expires.Delete(key)
	s.Dirty++
	return true
}

// setExpire sets the absolute expiry (ms) for an existing key.
func (s *Store) setExpire(dbi int, key string, at int64) {
	s.db(dbi).expires.Set(key, at)
	s.Dirty++
}

// ttlMillis reports the remaining TTL in ms: -2 missing key, -1 no TTL.
func (s *Store) ttlMillis(dbi int, key string) int64 {
	if s.lookup(dbi, key) == nil {
		return -2
	}
	v, ok := s.db(dbi).expires.Get(key)
	if !ok {
		return -1
	}
	rem := v.(int64) - s.clock()
	if rem < 0 {
		rem = 0
	}
	return rem
}

// ActiveExpireCycle samples up to sample volatile keys per database and
// deletes the expired ones (the serverCron job the paper's Fig 4 time
// events include). Returns the number of keys expired.
func (s *Store) ActiveExpireCycle(sample int) int {
	now := s.clock()
	total := 0
	for dbi, db := range s.dbs {
		for i := 0; i < sample; i++ {
			key, ok := db.expires.RandomKey()
			if !ok {
				break
			}
			if db.expired(key, now) {
				s.deleteKey(dbi, key)
				total++
			}
		}
	}
	return total
}

// RehashStep donates incremental-rehash work to every database's tables
// (called from the server cron).
func (s *Store) RehashStep(n int) {
	for _, db := range s.dbs {
		db.dict.RehashStep(n)
		db.expires.RehashStep(n)
	}
}

// DBSize reports the key count of a database.
func (s *Store) DBSize(dbi int) int { return s.db(dbi).dict.Len() }

// EachEntry iterates every live key of every database (for RDB dumps):
// expireAt is 0 when the key has no TTL.
func (s *Store) EachEntry(fn func(dbi int, key string, o *obj.Object, expireAt int64) bool) {
	for dbi, db := range s.dbs {
		stop := false
		db.dict.Each(func(k string, v any) bool {
			var exp int64
			if e, ok := db.expires.Get(k); ok {
				exp = e.(int64)
			}
			if !fn(dbi, k, v.(*obj.Object), exp) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// SetRaw installs an object directly (RDB load path), with optional expiry
// (0 = none). Does not count as dirty.
func (s *Store) SetRaw(dbi int, key string, o *obj.Object, expireAt int64) {
	db := s.db(dbi)
	db.dict.Set(key, o)
	if expireAt > 0 {
		db.expires.Set(key, expireAt)
	} else {
		db.expires.Delete(key)
	}
}

// FlushAll erases every database.
func (s *Store) FlushAll() {
	for i := range s.dbs {
		s.dbs[i] = &DB{dict: dict.New(s.seed()), expires: dict.New(s.seed())}
	}
	s.Dirty++
}

// ---- Command dispatch ----

// Command is the exported descriptor of one command-table entry: the single
// source of truth the server dispatch, replication filtering, and (future)
// sharding key extraction all read. Descriptors are registered once at init
// and never mutated.
type Command struct {
	// Name is the canonical lowercase command name.
	Name string
	// Arity as in Redis: positive = exact argc, negative = minimum argc.
	Arity int
	// Write marks commands that may modify the dataset (the Host-KV check
	// from §III-C, made before involving the SmartNIC).
	Write bool
	// FirstKey is the argv index of the first key argument, 0 when the
	// command addresses no key (PING, SCAN, FLUSHALL, ...). The groundwork
	// for routing commands to shards.
	FirstKey int
	// Server marks commands the embedding server layer handles itself
	// (SELECT, PSYNC, WAIT, ...); the store rejects them as unknown.
	Server bool

	handler func(s *Store, dbi int, argv [][]byte) ([]byte, bool)
}

// FirstKeyArg extracts the command's first key from argv, or nil when the
// command has none (or argv is too short).
func (c *Command) FirstKeyArg(argv [][]byte) []byte {
	if c.FirstKey <= 0 || c.FirstKey >= len(argv) {
		return nil
	}
	return argv[c.FirstKey]
}

// maxCmdLen bounds the stack buffer used for allocation-free
// case-insensitive lookups; no registered name comes close.
const maxCmdLen = 32

// LookupCommand resolves a command name (any case) to its descriptor, or
// nil. The lookup never allocates: the common already-lowercase case is a
// direct map probe, and mixed case folds into a stack buffer.
func LookupCommand(name []byte) *Command {
	if c, ok := commandTable[string(name)]; ok {
		return c
	}
	if len(name) > maxCmdLen {
		return nil
	}
	var buf [maxCmdLen]byte
	return commandTable[string(foldLower(buf[:len(name)], name))]
}

// LookupCommandName is LookupCommand for string-typed names.
func LookupCommandName(name string) *Command {
	if c, ok := commandTable[name]; ok {
		return c
	}
	if len(name) > maxCmdLen {
		return nil
	}
	var buf [maxCmdLen]byte
	dst := buf[:len(name)]
	for i := 0; i < len(name); i++ {
		ch := name[i]
		if 'A' <= ch && ch <= 'Z' {
			ch += 'a' - 'A'
		}
		dst[i] = ch
	}
	return commandTable[string(dst)]
}

// foldLower writes the ASCII-lowercased src into dst and returns dst.
func foldLower(dst, src []byte) []byte {
	for i, ch := range src {
		if 'A' <= ch && ch <= 'Z' {
			ch += 'a' - 'A'
		}
		dst[i] = ch
	}
	return dst
}

// Exec runs one command against database dbi. It returns the RESP-encoded
// reply and whether the dataset was modified (the replication trigger).
func (s *Store) Exec(dbi int, argv [][]byte) (reply []byte, dirty bool) {
	if len(argv) == 0 {
		return resp.AppendError(nil, "ERR empty command"), false
	}
	return s.Dispatch(LookupCommand(argv[0]), dbi, argv)
}

// Dispatch runs a command already resolved by LookupCommand (nil means
// unknown), saving the embedding server a second table probe.
func (s *Store) Dispatch(cmd *Command, dbi int, argv [][]byte) (reply []byte, dirty bool) {
	if len(argv) == 0 {
		return resp.AppendError(nil, "ERR empty command"), false
	}
	if cmd == nil || cmd.Server {
		name := strings.ToLower(string(argv[0]))
		return resp.AppendError(nil, fmt.Sprintf("ERR unknown command '%s'", name)), false
	}
	if (cmd.Arity > 0 && len(argv) != cmd.Arity) || (cmd.Arity < 0 && len(argv) < -cmd.Arity) {
		return resp.AppendError(nil, fmt.Sprintf("ERR wrong number of arguments for '%s' command", cmd.Name)), false
	}
	if dbi < 0 || dbi >= len(s.dbs) {
		return resp.AppendError(nil, "ERR invalid DB index"), false
	}
	return cmd.handler(s, dbi, argv)
}

// IsWriteCommand reports whether the named command may modify the dataset.
func IsWriteCommand(name string) bool {
	c := LookupCommandName(name)
	return c != nil && c.Write
}

// KnownCommand reports whether the store can execute the command (server
// level commands like SELECT are not the store's to run).
func KnownCommand(name string) bool {
	c := LookupCommandName(name)
	return c != nil && !c.Server
}

// EachCommand iterates every registered descriptor (introspection, tests).
func EachCommand(fn func(*Command)) {
	for _, c := range commandTable {
		fn(c)
	}
}

// Common reply fragments.
var (
	replyOK        = resp.AppendSimple(nil, "OK")
	replyWrongType = resp.AppendError(nil, "WRONGTYPE Operation against a key holding the wrong kind of value")
	replyNotInt    = resp.AppendError(nil, "ERR value is not an integer or out of range")
	replyNotFloat  = resp.AppendError(nil, "ERR value is not a valid float")
	replySyntax    = resp.AppendError(nil, "ERR syntax error")
)

func ok() []byte        { return append([]byte(nil), replyOK...) }
func wrongType() []byte { return append([]byte(nil), replyWrongType...) }
func notInt() []byte    { return append([]byte(nil), replyNotInt...) }
func notFloat() []byte  { return append([]byte(nil), replyNotFloat...) }
func syntaxErr() []byte { return append([]byte(nil), replySyntax...) }
