package store

import (
	"math/rand"
	"testing"
	"testing/quick"

	"skv/internal/resp"
)

// knownCommands samples real command names so the fuzzer hits handlers, not
// just the unknown-command path.
var knownCommands = []string{
	"set", "get", "setnx", "setex", "psetex", "getset", "getdel", "mset",
	"mget", "append", "strlen", "getrange", "setrange", "incr", "decr",
	"incrby", "decrby", "incrbyfloat", "del", "exists", "expire", "pexpire",
	"expireat", "pexpireat", "ttl", "pttl", "persist", "type", "keys",
	"scan", "randomkey", "rename", "dbsize", "flushdb", "flushall", "lpush",
	"rpush", "lpop", "rpop", "llen", "lrange", "lindex", "lset", "lrem",
	"ltrim", "rpoplpush", "hset", "hsetnx", "hmset", "hget", "hmget",
	"hdel", "hexists", "hlen", "hgetall", "hkeys", "hvals", "hincrby",
	"hscan", "sadd", "srem", "sismember", "scard", "smembers", "spop",
	"srandmember", "smove", "sinter", "sunion", "sdiff", "sinterstore",
	"sscan", "zadd", "zrem", "zscore", "zcard", "zrank", "zrevrank",
	"zcount", "zincrby", "zrange", "zrevrange", "zrangebyscore", "zscan",
	"ping", "echo", "info", "object",
}

// TestDispatcherNeverPanicsAndAlwaysRepliesRESP hammers the command table
// with structurally random invocations: any combination of a real command
// name and arbitrary arguments must yield exactly one parseable RESP reply.
func TestDispatcherNeverPanicsAndAlwaysRepliesRESP(t *testing.T) {
	f := func(seed int64, nArgs uint8, junk []byte) bool {
		rnd := rand.New(rand.NewSource(seed))
		s, _ := testStore()
		name := knownCommands[rnd.Intn(len(knownCommands))]
		argv := [][]byte{[]byte(name)}
		for i := 0; i < int(nArgs%6); i++ {
			switch rnd.Intn(4) {
			case 0:
				argv = append(argv, junk)
			case 1:
				argv = append(argv, []byte{})
			case 2:
				argv = append(argv, []byte("123"))
			default:
				argv = append(argv, []byte("key"))
			}
		}
		reply, _ := s.Exec(0, argv)
		if len(reply) == 0 {
			return false
		}
		var r resp.Reader
		r.Feed(reply)
		v, ok, err := r.ReadValue()
		_ = v
		return err == nil && ok && r.Buffered() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestMixedTypeCollisions interleaves commands of every type family on the
// SAME key: every reply must be either a result or a WRONGTYPE error, never
// a panic or corruption.
func TestMixedTypeCollisions(t *testing.T) {
	s, _ := testStore()
	rnd := rand.New(rand.NewSource(7))
	cmds := [][]string{
		{"SET", "x", "v"},
		{"LPUSH", "x", "a"},
		{"HSET", "x", "f", "v"},
		{"SADD", "x", "m"},
		{"ZADD", "x", "1", "m"},
		{"INCR", "x"},
		{"GET", "x"},
		{"LPOP", "x"},
		{"DEL", "x"},
		{"APPEND", "x", "y"},
		{"SPOP", "x"},
		{"GETDEL", "x"},
		{"OBJECT", "ENCODING", "x"},
	}
	for i := 0; i < 5000; i++ {
		words := cmds[rnd.Intn(len(cmds))]
		argv := make([][]byte, len(words))
		for j, w := range words {
			argv[j] = []byte(w)
		}
		reply, _ := s.Exec(0, argv)
		var r resp.Reader
		r.Feed(reply)
		if _, ok, err := r.ReadValue(); err != nil || !ok {
			t.Fatalf("iteration %d: unparsable reply %q to %v", i, reply, words)
		}
	}
}
