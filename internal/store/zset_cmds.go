package store

import (
	"math"
	"strconv"
	"strings"

	"skv/internal/obj"
	"skv/internal/resp"
	"skv/internal/skiplist"
)

// lookupZSet fetches a key that must hold a sorted set.
func lookupZSet(s *Store, dbi int, key string) (*obj.Object, bool) {
	o := s.lookup(dbi, key)
	if o == nil {
		return nil, true
	}
	if o.Type != obj.TZSet {
		return nil, false
	}
	return o, true
}

func parseScore(b []byte) (float64, bool) {
	switch strings.ToLower(string(b)) {
	case "+inf", "inf":
		return math.Inf(1), true
	case "-inf":
		return math.Inf(-1), true
	}
	f, err := strconv.ParseFloat(string(b), 64)
	if err != nil || math.IsNaN(f) {
		return 0, false
	}
	return f, true
}

func cmdZAdd(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	if (len(argv)-2)%2 != 0 {
		return syntaxErr(), false
	}
	key := string(argv[1])
	o, okType := lookupZSet(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	// Validate all scores first (atomicity).
	type pair struct {
		score  float64
		member string
	}
	pairs := make([]pair, 0, (len(argv)-2)/2)
	for i := 2; i < len(argv); i += 2 {
		f, okF := parseScore(argv[i])
		if !okF {
			return notFloat(), false
		}
		pairs = append(pairs, pair{score: f, member: string(argv[i+1])})
	}
	if o == nil {
		o = obj.NewZSet(s.seed())
		s.setKey(dbi, key, o)
	}
	added := int64(0)
	for _, p := range pairs {
		if o.ZAdd(p.member, p.score) {
			added++
		}
	}
	s.Dirty++
	return resp.AppendInt(nil, added), true
}

func cmdZRem(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	key := string(argv[1])
	o, okType := lookupZSet(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendInt(nil, 0), false
	}
	removed := int64(0)
	for _, m := range argv[2:] {
		if o.ZRem(string(m)) {
			removed++
		}
	}
	if o.ZLen() == 0 {
		s.deleteKey(dbi, key)
	}
	if removed > 0 {
		s.Dirty++
	}
	return resp.AppendInt(nil, removed), removed > 0
}

func cmdZScore(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupZSet(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendNullBulk(nil), false
	}
	score, found := o.ZScore(string(argv[2]))
	if !found {
		return resp.AppendNullBulk(nil), false
	}
	return resp.AppendBulkString(nil, obj.FormatScore(score)), false
}

func cmdZCard(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupZSet(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendInt(nil, 0), false
	}
	return resp.AppendInt(nil, int64(o.ZLen())), false
}

func cmdZRank(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupZSet(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendNullBulk(nil), false
	}
	r, found := o.ZRank(string(argv[2]))
	if !found {
		return resp.AppendNullBulk(nil), false
	}
	return resp.AppendInt(nil, int64(r)), false
}

func cmdZIncrBy(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	delta, okF := parseScore(argv[2])
	if !okF {
		return notFloat(), false
	}
	key := string(argv[1])
	o, okType := lookupZSet(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		o = obj.NewZSet(s.seed())
		s.setKey(dbi, key, o)
	}
	member := string(argv[3])
	cur, _ := o.ZScore(member)
	cur += delta
	o.ZAdd(member, cur)
	s.Dirty++
	return resp.AppendBulkString(nil, obj.FormatScore(cur)), true
}

func zrangeReply(els []skiplist.Element, withScores bool) []byte {
	n := len(els)
	if withScores {
		n *= 2
	}
	out := resp.AppendArrayHeader(nil, n)
	for _, e := range els {
		out = resp.AppendBulkString(out, e.Member)
		if withScores {
			out = resp.AppendBulkString(out, obj.FormatScore(e.Score))
		}
	}
	return out
}

func zrangeGeneric(s *Store, dbi int, argv [][]byte, reverse bool) ([]byte, bool) {
	start, err1 := strconv.Atoi(string(argv[2]))
	stop, err2 := strconv.Atoi(string(argv[3]))
	if err1 != nil || err2 != nil {
		return notInt(), false
	}
	withScores := false
	if len(argv) == 5 {
		if !strings.EqualFold(string(argv[4]), "WITHSCORES") {
			return syntaxErr(), false
		}
		withScores = true
	}
	o, okType := lookupZSet(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendArrayHeader(nil, 0), false
	}
	var els []skiplist.Element
	if reverse {
		// Reverse rank window maps onto the ascending one.
		n := o.ZLen()
		rs, re := start, stop
		if rs < 0 {
			rs = n + rs
		}
		if re < 0 {
			re = n + re
		}
		els = o.ZRangeByRank(n-1-re, n-1-rs)
		for i, j := 0, len(els)-1; i < j; i, j = i+1, j-1 {
			els[i], els[j] = els[j], els[i]
		}
	} else {
		els = o.ZRangeByRank(start, stop)
	}
	return zrangeReply(els, withScores), false
}

func cmdZRange(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return zrangeGeneric(s, dbi, argv, false)
}

func cmdZRevRange(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return zrangeGeneric(s, dbi, argv, true)
}

func cmdZRangeByScore(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	min, ok1 := parseScore(argv[2])
	max, ok2 := parseScore(argv[3])
	if !ok1 || !ok2 {
		return resp.AppendError(nil, "ERR min or max is not a float"), false
	}
	withScores := false
	if len(argv) == 5 {
		if !strings.EqualFold(string(argv[4]), "WITHSCORES") {
			return syntaxErr(), false
		}
		withScores = true
	}
	o, okType := lookupZSet(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendArrayHeader(nil, 0), false
	}
	return zrangeReply(o.ZRangeByScore(min, max), withScores), false
}
