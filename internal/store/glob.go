package store

// GlobMatch implements Redis's stringmatchlen glob: '*' matches any
// sequence, '?' any single character, '[a-c]' character classes with
// optional '^' negation, and '\\' escapes the next character.
func GlobMatch(pattern, str string) bool {
	return globMatch(pattern, str)
}

func globMatch(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '*':
			for len(p) > 1 && p[1] == '*' {
				p = p[1:]
			}
			if len(p) == 1 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if globMatch(p[1:], s[i:]) {
					return true
				}
			}
			return false
		case '?':
			if len(s) == 0 {
				return false
			}
			s = s[1:]
			p = p[1:]
		case '[':
			if len(s) == 0 {
				return false
			}
			p = p[1:]
			neg := len(p) > 0 && p[0] == '^'
			if neg {
				p = p[1:]
			}
			matched := false
			for len(p) > 0 && p[0] != ']' {
				if p[0] == '\\' && len(p) > 1 {
					if p[1] == s[0] {
						matched = true
					}
					p = p[2:]
				} else if len(p) > 2 && p[1] == '-' && p[2] != ']' {
					lo, hi := p[0], p[2]
					if lo > hi {
						lo, hi = hi, lo
					}
					if s[0] >= lo && s[0] <= hi {
						matched = true
					}
					p = p[3:]
				} else {
					if p[0] == s[0] {
						matched = true
					}
					p = p[1:]
				}
			}
			if len(p) > 0 {
				p = p[1:] // consume ']'
			}
			if matched == neg {
				return false
			}
			s = s[1:]
		case '\\':
			if len(p) > 1 {
				p = p[1:]
			}
			fallthrough
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			s = s[1:]
			p = p[1:]
		}
	}
	return len(s) == 0
}
