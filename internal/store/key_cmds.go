package store

import (
	"strconv"

	"skv/internal/resp"
)

func cmdDel(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	n := int64(0)
	for _, k := range argv[1:] {
		if s.deleteKey(dbi, string(k)) {
			n++
		}
	}
	return resp.AppendInt(nil, n), n > 0
}

func cmdExists(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	n := int64(0)
	for _, k := range argv[1:] {
		if s.lookup(dbi, string(k)) != nil {
			n++
		}
	}
	return resp.AppendInt(nil, n), false
}

func expireGeneric(s *Store, dbi int, argv [][]byte, unitMS int64) ([]byte, bool) {
	n, err := strconv.ParseInt(string(argv[2]), 10, 64)
	if err != nil {
		return notInt(), false
	}
	key := string(argv[1])
	if s.lookup(dbi, key) == nil {
		return resp.AppendInt(nil, 0), false
	}
	at := s.clock() + n*unitMS
	if n <= 0 {
		// Non-positive TTL deletes immediately, like Redis.
		s.deleteKey(dbi, key)
		return resp.AppendInt(nil, 1), true
	}
	s.setExpire(dbi, key, at)
	return resp.AppendInt(nil, 1), true
}

func cmdExpire(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return expireGeneric(s, dbi, argv, 1000)
}

func cmdPExpire(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return expireGeneric(s, dbi, argv, 1)
}

func cmdTTL(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	ms := s.ttlMillis(dbi, string(argv[1]))
	if ms < 0 {
		return resp.AppendInt(nil, ms), false
	}
	return resp.AppendInt(nil, (ms+999)/1000), false
}

func cmdPTTL(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return resp.AppendInt(nil, s.ttlMillis(dbi, string(argv[1]))), false
}

func cmdPersist(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	key := string(argv[1])
	if s.lookup(dbi, key) == nil {
		return resp.AppendInt(nil, 0), false
	}
	if _, had := s.shardDB(dbi, key).expires.Get(key); !had {
		return resp.AppendInt(nil, 0), false
	}
	s.shardDB(dbi, key).expires.Delete(key)
	s.Dirty++
	return resp.AppendInt(nil, 1), true
}

func cmdType(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o := s.lookup(dbi, string(argv[1]))
	if o == nil {
		return resp.AppendSimple(nil, "none"), false
	}
	return resp.AppendSimple(nil, o.Type.String()), false
}

func cmdKeys(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	pattern := string(argv[1])
	now := s.clock()
	var keys []string
	// Cross-shard fan-in: collect from every shard slice in shard order, so
	// the reply is deterministic for a given keyspace layout.
	for _, db := range s.dbs[dbi] {
		db.dict.Each(func(k string, _ any) bool {
			if !db.expired(k, now) && GlobMatch(pattern, k) {
				keys = append(keys, k)
			}
			return true
		})
	}
	out := resp.AppendArrayHeader(nil, len(keys))
	for _, k := range keys {
		out = resp.AppendBulkString(out, k)
	}
	return out, false
}

func cmdRandomKey(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	if s.shards == 1 {
		// Legacy fast path, bit-for-bit: no extra RNG draws at one shard.
		db := s.dbs[dbi][0]
		for i := 0; i < 100; i++ {
			k, ok := db.dict.RandomKey()
			if !ok {
				break
			}
			if s.lookup(dbi, k) != nil {
				return resp.AppendBulkString(nil, k), false
			}
		}
		return resp.AppendNullBulk(nil), false
	}
	// Cross-shard: pick a shard weighted by its key count (so every live key
	// stays roughly uniform), then sample within it. Re-draw on expired hits,
	// bounded like the single-shard loop.
	for i := 0; i < 100; i++ {
		total := s.DBSize(dbi)
		if total == 0 {
			break
		}
		n := s.rnd.Intn(total)
		var db *DB
		for _, sdb := range s.dbs[dbi] {
			if l := sdb.dict.Len(); n < l {
				db = sdb
				break
			} else {
				n -= l
			}
		}
		if db == nil {
			break
		}
		k, ok := db.dict.RandomKey()
		if !ok {
			continue
		}
		if s.lookup(dbi, k) != nil {
			return resp.AppendBulkString(nil, k), false
		}
	}
	return resp.AppendNullBulk(nil), false
}

func cmdRename(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	src, dst := string(argv[1]), string(argv[2])
	o := s.lookup(dbi, src)
	if o == nil {
		return resp.AppendError(nil, "ERR no such key"), false
	}
	ttl := s.ttlMillis(dbi, src)
	s.deleteKey(dbi, src)
	s.setKey(dbi, dst, o)
	if ttl > 0 {
		s.setExpire(dbi, dst, s.clock()+ttl)
	}
	return ok(), true
}

func cmdDBSize(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return resp.AppendInt(nil, int64(s.DBSize(dbi))), false
}

func cmdFlushDB(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	s.flushDB(dbi)
	s.Dirty++
	return ok(), true
}

func cmdFlushAll(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	s.FlushAll()
	return ok(), true
}
