package store

import (
	"testing"
)

func TestExpireAt(t *testing.T) {
	s, now := testStore()
	run(t, s, "SET k v")
	deadline := (*now + 5000) / 1000 // seconds
	wantInt(t, s, "EXPIREAT k "+itoa(deadline), 1)
	ttl := run(t, s, "TTL k")
	if ttl.Int <= 0 || ttl.Int > 5 {
		t.Fatalf("TTL after EXPIREAT = %d", ttl.Int)
	}
	// Past deadline deletes immediately.
	run(t, s, "SET k2 v")
	wantInt(t, s, "EXPIREAT k2 1", 1)
	wantNil(t, s, "GET k2")
	wantInt(t, s, "EXPIREAT missing 99999999999", 0)
}

func TestPExpireAt(t *testing.T) {
	s, now := testStore()
	run(t, s, "SET k v")
	wantInt(t, s, "PEXPIREAT k "+itoa(*now+250), 1)
	*now += 200
	wantStr(t, s, "GET k", "v")
	*now += 100
	wantNil(t, s, "GET k")
}

func TestGetDel(t *testing.T) {
	s, _ := testStore()
	run(t, s, "SET k v")
	wantStr(t, s, "GETDEL k", "v")
	wantNil(t, s, "GET k")
	wantNil(t, s, "GETDEL k")
	run(t, s, "LPUSH l a")
	wantErrContains(t, s, "GETDEL l", "WRONGTYPE")
}

func TestIncrByFloat(t *testing.T) {
	s, _ := testStore()
	wantStr(t, s, "INCRBYFLOAT k 1.5", "1.5")
	wantStr(t, s, "INCRBYFLOAT k 2.25", "3.75")
	wantStr(t, s, "INCRBYFLOAT k -0.75", "3")
	run(t, s, "SET str abc")
	wantErrContains(t, s, "INCRBYFLOAT str 1", "not a valid float")
	wantErrContains(t, s, "INCRBYFLOAT k abc", "not a valid float")
}

func TestZCount(t *testing.T) {
	s, _ := testStore()
	run(t, s, "ZADD z 1 a 2 b 3 c 4 d")
	wantInt(t, s, "ZCOUNT z 2 3", 2)
	wantInt(t, s, "ZCOUNT z -inf +inf", 4)
	wantInt(t, s, "ZCOUNT z 10 20", 0)
	wantInt(t, s, "ZCOUNT missing 0 1", 0)
}

func TestZRevRank(t *testing.T) {
	s, _ := testStore()
	run(t, s, "ZADD z 1 a 2 b 3 c")
	wantInt(t, s, "ZREVRANK z c", 0)
	wantInt(t, s, "ZREVRANK z a", 2)
	wantNil(t, s, "ZREVRANK z missing")
	wantNil(t, s, "ZREVRANK nosuch m")
}

func TestLTrim(t *testing.T) {
	s, _ := testStore()
	run(t, s, "RPUSH l a b c d e")
	wantStr(t, s, "LTRIM l 1 3", "OK")
	if v := run(t, s, "LRANGE l 0 -1"); v.String() != "[b c d]" {
		t.Fatalf("after LTRIM: %s", v.String())
	}
	wantStr(t, s, "LTRIM l -2 -1", "OK")
	if v := run(t, s, "LRANGE l 0 -1"); v.String() != "[c d]" {
		t.Fatalf("after negative LTRIM: %s", v.String())
	}
	// Empty window deletes the key.
	wantStr(t, s, "LTRIM l 5 10", "OK")
	wantInt(t, s, "EXISTS l", 0)
	wantStr(t, s, "LTRIM missing 0 1", "OK")
}

func TestSMove(t *testing.T) {
	s, _ := testStore()
	run(t, s, "SADD src a b")
	run(t, s, "SADD dst c")
	wantInt(t, s, "SMOVE src dst a", 1)
	wantInt(t, s, "SISMEMBER src a", 0)
	wantInt(t, s, "SISMEMBER dst a", 1)
	wantInt(t, s, "SMOVE src dst nothere", 0)
	// Moving the last member deletes the source.
	wantInt(t, s, "SMOVE src dst b", 1)
	wantInt(t, s, "EXISTS src", 0)
	// Destination created on demand.
	run(t, s, "SADD s2 x")
	wantInt(t, s, "SMOVE s2 fresh x", 1)
	wantInt(t, s, "SISMEMBER fresh x", 1)
}

func TestHSetNX(t *testing.T) {
	s, _ := testStore()
	wantInt(t, s, "HSETNX h f v1", 1)
	wantInt(t, s, "HSETNX h f v2", 0)
	wantStr(t, s, "HGET h f", "v1")
}

func TestSInterStore(t *testing.T) {
	s, _ := testStore()
	run(t, s, "SADD a 1 2 3")
	run(t, s, "SADD b 2 3 4")
	wantInt(t, s, "SINTERSTORE dst a b", 2)
	if v := run(t, s, "SMEMBERS dst"); v.String() != "[2 3]" {
		t.Fatalf("SINTERSTORE result: %s", v.String())
	}
	// Empty intersection removes the destination.
	run(t, s, "SADD c 9")
	wantInt(t, s, "SINTERSTORE dst a c", 0)
	wantInt(t, s, "EXISTS dst", 0)
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func TestObjectEncoding(t *testing.T) {
	s, _ := testStore()
	run(t, s, "SET num 42")
	wantStr(t, s, "OBJECT ENCODING num", "int")
	run(t, s, "SET str notanint")
	wantStr(t, s, "OBJECT ENCODING str", "raw")
	run(t, s, "HSET h f v")
	wantStr(t, s, "OBJECT ENCODING h", "listpack")
	run(t, s, "SADD si 1 2 3")
	wantStr(t, s, "OBJECT ENCODING si", "intset")
	run(t, s, "SADD ss abc")
	wantStr(t, s, "OBJECT ENCODING ss", "hashtable")
	run(t, s, "ZADD z 1 m")
	wantStr(t, s, "OBJECT ENCODING z", "listpack")
	run(t, s, "RPUSH l a")
	wantStr(t, s, "OBJECT ENCODING l", "linkedlist")
	wantInt(t, s, "OBJECT REFCOUNT l", 1)
	wantErrContains(t, s, "OBJECT ENCODING missing", "no such key")
	wantErrContains(t, s, "OBJECT FREQ l", "syntax")
}
