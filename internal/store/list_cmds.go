package store

import (
	"bytes"
	"strconv"

	"skv/internal/adlist"
	"skv/internal/obj"
	"skv/internal/resp"
)

// lookupList fetches a key that must hold a list.
func lookupList(s *Store, dbi int, key string) (*obj.Object, bool) {
	o := s.lookup(dbi, key)
	if o == nil {
		return nil, true
	}
	if o.Type != obj.TList {
		return nil, false
	}
	return o, true
}

func pushGeneric(s *Store, dbi int, argv [][]byte, head bool) ([]byte, bool) {
	key := string(argv[1])
	o, okType := lookupList(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		o = obj.NewList()
		s.setKey(dbi, key, o)
	}
	l := o.List()
	for _, v := range argv[2:] {
		elem := append([]byte(nil), v...)
		if head {
			l.PushHead(elem)
		} else {
			l.PushTail(elem)
		}
	}
	s.Dirty++
	return resp.AppendInt(nil, int64(l.Len())), true
}

func cmdLPush(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return pushGeneric(s, dbi, argv, true)
}

func cmdRPush(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return pushGeneric(s, dbi, argv, false)
}

func popGeneric(s *Store, dbi int, argv [][]byte, head bool) ([]byte, bool) {
	key := string(argv[1])
	o, okType := lookupList(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendNullBulk(nil), false
	}
	l := o.List()
	var v any
	var got bool
	if head {
		v, got = l.PopHead()
	} else {
		v, got = l.PopTail()
	}
	if !got {
		return resp.AppendNullBulk(nil), false
	}
	if l.Len() == 0 {
		s.deleteKey(dbi, key)
	}
	s.Dirty++
	return resp.AppendBulk(nil, v.([]byte)), true
}

func cmdLPop(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return popGeneric(s, dbi, argv, true)
}

func cmdRPop(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return popGeneric(s, dbi, argv, false)
}

func cmdLLen(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupList(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendInt(nil, 0), false
	}
	return resp.AppendInt(nil, int64(o.List().Len())), false
}

func cmdLRange(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	start, err1 := strconv.Atoi(string(argv[2]))
	stop, err2 := strconv.Atoi(string(argv[3]))
	if err1 != nil || err2 != nil {
		return notInt(), false
	}
	o, okType := lookupList(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendArrayHeader(nil, 0), false
	}
	vals := o.List().Range(start, stop)
	out := resp.AppendArrayHeader(nil, len(vals))
	for _, v := range vals {
		out = resp.AppendBulk(out, v.([]byte))
	}
	return out, false
}

func cmdLIndex(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	idx, err := strconv.Atoi(string(argv[2]))
	if err != nil {
		return notInt(), false
	}
	o, okType := lookupList(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendNullBulk(nil), false
	}
	n := o.List().Index(idx)
	if n == nil {
		return resp.AppendNullBulk(nil), false
	}
	return resp.AppendBulk(nil, n.Value.([]byte)), false
}

func cmdLSet(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	idx, err := strconv.Atoi(string(argv[2]))
	if err != nil {
		return notInt(), false
	}
	o, okType := lookupList(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendError(nil, "ERR no such key"), false
	}
	n := o.List().Index(idx)
	if n == nil {
		return resp.AppendError(nil, "ERR index out of range"), false
	}
	n.Value = append([]byte(nil), argv[3]...)
	s.Dirty++
	return ok(), true
}

func cmdLRem(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	count, err := strconv.Atoi(string(argv[2]))
	if err != nil {
		return notInt(), false
	}
	o, okType := lookupList(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendInt(nil, 0), false
	}
	l := o.List()
	removed := int64(0)
	match := func(n *adlist.Node) bool { return bytes.Equal(n.Value.([]byte), argv[3]) }
	if count >= 0 {
		limit := count
		for n := l.Head(); n != nil; {
			next := n.Next()
			if match(n) {
				l.Remove(n)
				removed++
				if limit > 0 && int(removed) == limit {
					break
				}
			}
			n = next
		}
	} else {
		limit := -count
		for n := l.Tail(); n != nil; {
			prev := n.Prev()
			if match(n) {
				l.Remove(n)
				removed++
				if int(removed) == limit {
					break
				}
			}
			n = prev
		}
	}
	if l.Len() == 0 {
		s.deleteKey(dbi, string(argv[1]))
	}
	if removed > 0 {
		s.Dirty++
	}
	return resp.AppendInt(nil, removed), removed > 0
}

func cmdRPopLPush(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	src, okType := lookupList(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if src == nil {
		return resp.AppendNullBulk(nil), false
	}
	dst, okType := lookupList(s, dbi, string(argv[2]))
	if !okType {
		return wrongType(), false
	}
	v, got := src.List().PopTail()
	if !got {
		return resp.AppendNullBulk(nil), false
	}
	if dst == nil {
		dst = obj.NewList()
		s.setKey(dbi, string(argv[2]), dst)
	}
	dst.List().PushHead(v)
	if src.List().Len() == 0 {
		s.deleteKey(dbi, string(argv[1]))
	}
	s.Dirty++
	return resp.AppendBulk(nil, v.([]byte)), true
}
