package store

import (
	"strconv"

	"skv/internal/obj"
	"skv/internal/resp"
)

// lookupHash fetches a key that must hold a hash.
func lookupHash(s *Store, dbi int, key string) (*obj.Object, bool) {
	o := s.lookup(dbi, key)
	if o == nil {
		return nil, true
	}
	if o.Type != obj.THash {
		return nil, false
	}
	return o, true
}

func cmdHSet(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	if len(argv)%2 != 0 {
		return resp.AppendError(nil, "ERR wrong number of arguments for 'hset' command"), false
	}
	key := string(argv[1])
	o, okType := lookupHash(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		o = obj.NewHash(s.seed())
		s.setKey(dbi, key, o)
	}
	created := int64(0)
	for i := 2; i < len(argv); i += 2 {
		if o.HashSet(string(argv[i]), append([]byte(nil), argv[i+1]...)) {
			created++
		}
	}
	s.Dirty++
	return resp.AppendInt(nil, created), true
}

func cmdHGet(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupHash(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendNullBulk(nil), false
	}
	v, found := o.HashGet(string(argv[2]))
	if !found {
		return resp.AppendNullBulk(nil), false
	}
	return resp.AppendBulk(nil, v), false
}

func cmdHMGet(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupHash(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	out := resp.AppendArrayHeader(nil, len(argv)-2)
	for _, f := range argv[2:] {
		if o == nil {
			out = resp.AppendNullBulk(out)
			continue
		}
		if v, found := o.HashGet(string(f)); found {
			out = resp.AppendBulk(out, v)
		} else {
			out = resp.AppendNullBulk(out)
		}
	}
	return out, false
}

func cmdHDel(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	key := string(argv[1])
	o, okType := lookupHash(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendInt(nil, 0), false
	}
	n := int64(0)
	for _, f := range argv[2:] {
		if o.HashDel(string(f)) {
			n++
		}
	}
	if o.HashLen() == 0 {
		s.deleteKey(dbi, key)
	}
	if n > 0 {
		s.Dirty++
	}
	return resp.AppendInt(nil, n), n > 0
}

func cmdHExists(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupHash(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendInt(nil, 0), false
	}
	if _, found := o.HashGet(string(argv[2])); found {
		return resp.AppendInt(nil, 1), false
	}
	return resp.AppendInt(nil, 0), false
}

func cmdHLen(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupHash(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendInt(nil, 0), false
	}
	return resp.AppendInt(nil, int64(o.HashLen())), false
}

func hashCollect(o *obj.Object, fields, values bool) [][]byte {
	var out [][]byte
	o.HashEach(func(f string, v []byte) bool {
		if fields {
			out = append(out, []byte(f))
		}
		if values {
			out = append(out, v)
		}
		return true
	})
	return out
}

func cmdHGetAll(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupHash(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendArrayHeader(nil, 0), false
	}
	items := hashCollect(o, true, true)
	out := resp.AppendArrayHeader(nil, len(items))
	for _, it := range items {
		out = resp.AppendBulk(out, it)
	}
	return out, false
}

func cmdHKeys(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupHash(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendArrayHeader(nil, 0), false
	}
	items := hashCollect(o, true, false)
	out := resp.AppendArrayHeader(nil, len(items))
	for _, it := range items {
		out = resp.AppendBulk(out, it)
	}
	return out, false
}

func cmdHVals(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupHash(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendArrayHeader(nil, 0), false
	}
	items := hashCollect(o, false, true)
	out := resp.AppendArrayHeader(nil, len(items))
	for _, it := range items {
		out = resp.AppendBulk(out, it)
	}
	return out, false
}

func cmdHIncrBy(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	delta, err := strconv.ParseInt(string(argv[3]), 10, 64)
	if err != nil {
		return notInt(), false
	}
	key := string(argv[1])
	o, okType := lookupHash(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		o = obj.NewHash(s.seed())
		s.setKey(dbi, key, o)
	}
	field := string(argv[2])
	var cur int64
	if v, found := o.HashGet(field); found {
		n, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return resp.AppendError(nil, "ERR hash value is not an integer"), false
		}
		cur = n
	}
	cur += delta
	o.HashSet(field, strconv.AppendInt(nil, cur, 10))
	s.Dirty++
	return resp.AppendInt(nil, cur), true
}
