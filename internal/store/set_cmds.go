package store

import (
	"sort"

	"skv/internal/obj"
	"skv/internal/resp"
)

// lookupSet fetches a key that must hold a set.
func lookupSet(s *Store, dbi int, key string) (*obj.Object, bool) {
	o := s.lookup(dbi, key)
	if o == nil {
		return nil, true
	}
	if o.Type != obj.TSet {
		return nil, false
	}
	return o, true
}

func cmdSAdd(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	key := string(argv[1])
	o, okType := lookupSet(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		o = obj.NewSet(s.seed())
		s.setKey(dbi, key, o)
	}
	added := int64(0)
	for _, m := range argv[2:] {
		if o.SetAdd(string(m)) {
			added++
		}
	}
	if added > 0 {
		s.Dirty++
	}
	return resp.AppendInt(nil, added), added > 0
}

func cmdSRem(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	key := string(argv[1])
	o, okType := lookupSet(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendInt(nil, 0), false
	}
	removed := int64(0)
	for _, m := range argv[2:] {
		if o.SetRemove(string(m)) {
			removed++
		}
	}
	if o.SetLen() == 0 {
		s.deleteKey(dbi, key)
	}
	if removed > 0 {
		s.Dirty++
	}
	return resp.AppendInt(nil, removed), removed > 0
}

func cmdSIsMember(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupSet(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o != nil && o.SetContains(string(argv[2])) {
		return resp.AppendInt(nil, 1), false
	}
	return resp.AppendInt(nil, 0), false
}

func cmdSCard(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupSet(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendInt(nil, 0), false
	}
	return resp.AppendInt(nil, int64(o.SetLen())), false
}

func setMembers(o *obj.Object) []string {
	var out []string
	o.SetEach(func(m string) bool {
		out = append(out, m)
		return true
	})
	return out
}

func cmdSMembers(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupSet(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendArrayHeader(nil, 0), false
	}
	members := setMembers(o)
	out := resp.AppendArrayHeader(nil, len(members))
	for _, m := range members {
		out = resp.AppendBulkString(out, m)
	}
	return out, false
}

func cmdSPop(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	key := string(argv[1])
	o, okType := lookupSet(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendNullBulk(nil), false
	}
	m, found := o.SetRandomMember()
	if !found {
		return resp.AppendNullBulk(nil), false
	}
	o.SetRemove(m)
	if o.SetLen() == 0 {
		s.deleteKey(dbi, key)
	}
	s.Dirty++
	return resp.AppendBulkString(nil, m), true
}

func cmdSRandMember(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupSet(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendNullBulk(nil), false
	}
	m, found := o.SetRandomMember()
	if !found {
		return resp.AppendNullBulk(nil), false
	}
	return resp.AppendBulkString(nil, m), false
}

// setOp builds the membership maps for SINTER/SUNION/SDIFF.
func setOp(s *Store, dbi int, keys [][]byte) ([]map[string]bool, []byte) {
	sets := make([]map[string]bool, len(keys))
	for i, k := range keys {
		o, okType := lookupSet(s, dbi, string(k))
		if !okType {
			return nil, wrongType()
		}
		m := map[string]bool{}
		if o != nil {
			o.SetEach(func(member string) bool {
				m[member] = true
				return true
			})
		}
		sets[i] = m
	}
	return sets, nil
}

func replyMembers(members []string) []byte {
	out := resp.AppendArrayHeader(nil, len(members))
	for _, m := range members {
		out = resp.AppendBulkString(out, m)
	}
	return out
}

func cmdSInter(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	sets, errReply := setOp(s, dbi, argv[1:])
	if errReply != nil {
		return errReply, false
	}
	var out []string
	for m := range sets[0] {
		in := true
		for _, other := range sets[1:] {
			if !other[m] {
				in = false
				break
			}
		}
		if in {
			out = append(out, m)
		}
	}
	sortStrings(out)
	return replyMembers(out), false
}

func cmdSUnion(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	sets, errReply := setOp(s, dbi, argv[1:])
	if errReply != nil {
		return errReply, false
	}
	union := map[string]bool{}
	for _, set := range sets {
		for m := range set {
			union[m] = true
		}
	}
	out := make([]string, 0, len(union))
	for m := range union {
		out = append(out, m)
	}
	sortStrings(out)
	return replyMembers(out), false
}

func cmdSDiff(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	sets, errReply := setOp(s, dbi, argv[1:])
	if errReply != nil {
		return errReply, false
	}
	var out []string
	for m := range sets[0] {
		in := false
		for _, other := range sets[1:] {
			if other[m] {
				in = true
				break
			}
		}
		if !in {
			out = append(out, m)
		}
	}
	sortStrings(out)
	return replyMembers(out), false
}

// sortStrings keeps set-operation replies deterministic (Redis does not
// guarantee order; determinism simplifies tests and replication checks).
func sortStrings(ss []string) { sort.Strings(ss) }
