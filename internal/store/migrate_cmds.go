package store

// Slot-migration data plane: DUMP / RESTORE / MIGRATEDEL, the three
// commands the cluster's key-by-key slot mover drives, plus the canonical
// per-entry serialization they share.
//
// The mover cannot block the source's event loop the way real Redis
// MIGRATE does (source and target are separate simulated machines), so
// the transfer is optimistic instead: DUMP at the source, RESTORE ... IFEQ
// at the target, then MIGRATEDEL (delete-if-value-unchanged) back at the
// source. A client write that slips between DUMP and MIGRATEDEL makes the
// CAS fail (:0) and the mover retries from a fresh DUMP — no blocking, no
// lost updates.
//
// The serialization is canonical: hash fields and set members are sorted,
// so two objects with equal content always serialize to identical bytes
// regardless of dict iteration order or rehash progress — the property the
// bytes-equality CAS rides on. The absolute expiry rides in the payload
// header but is deliberately EXCLUDED from the CAS comparison: relative
// expiries replicate verbatim and resolve against each replica's own
// clock, so absolute deadlines may legitimately differ master↔slave while
// the value bytes converge.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"skv/internal/obj"
	"skv/internal/resp"
)

// migratePayloadVersion guards the wire format; RESTORE rejects payloads
// from a different encoder generation instead of misparsing them.
const migratePayloadVersion = 1

// payloadHeaderLen is version byte + type byte + 8-byte expiry.
const payloadHeaderLen = 10

// appendLenBytes appends a 32-bit big-endian length followed by the bytes.
func appendLenBytes(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// serializeValue renders an object's content canonically (type byte +
// sorted collection payload) — the portion of a DUMP payload the CAS
// comparisons use.
func serializeValue(o *obj.Object) []byte {
	b := []byte{byte(o.Type)}
	switch o.Type {
	case obj.TString:
		b = appendLenBytes(b, o.StringBytes())
	case obj.TList:
		l := o.List()
		b = binary.BigEndian.AppendUint32(b, uint32(l.Len()))
		l.Each(func(v any) bool {
			b = appendLenBytes(b, v.([]byte))
			return true
		})
	case obj.THash:
		type pair struct {
			f string
			v []byte
		}
		var pairs []pair
		o.HashEach(func(f string, v []byte) bool {
			pairs = append(pairs, pair{f, v})
			return true
		})
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].f < pairs[j].f })
		b = binary.BigEndian.AppendUint32(b, uint32(len(pairs)))
		for _, p := range pairs {
			b = appendLenBytes(b, []byte(p.f))
			b = appendLenBytes(b, p.v)
		}
	case obj.TSet:
		var members []string
		o.SetEach(func(m string) bool {
			members = append(members, m)
			return true
		})
		sort.Strings(members)
		b = binary.BigEndian.AppendUint32(b, uint32(len(members)))
		for _, m := range members {
			b = appendLenBytes(b, []byte(m))
		}
	case obj.TZSet:
		els := o.ZRangeByRank(0, -1)
		b = binary.BigEndian.AppendUint32(b, uint32(len(els)))
		for _, e := range els {
			b = appendLenBytes(b, []byte(e.Member))
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(e.Score))
		}
	}
	return b
}

// SerializedEntry renders the full DUMP payload for a live key: header
// (version, expiry) + canonical value. ok is false when the key is absent
// (or lazily expired).
func (s *Store) SerializedEntry(dbi int, key string) (payload []byte, ok bool) {
	o := s.lookup(dbi, key)
	if o == nil {
		return nil, false
	}
	var expireAt int64
	if v, has := s.shardDB(dbi, key).expires.Get(key); has {
		expireAt = v.(int64)
	}
	b := make([]byte, 0, 64)
	b = append(b, migratePayloadVersion, byte(o.Type))
	b = binary.BigEndian.AppendUint64(b, uint64(expireAt))
	return append(b, serializeValue(o)...), true
}

// valueBytesOf extracts the CAS-relevant portion of a payload (everything
// after the header). ok is false for truncated or alien payloads.
func valueBytesOf(payload []byte) ([]byte, bool) {
	if len(payload) < payloadHeaderLen+1 || payload[0] != migratePayloadVersion {
		return nil, false
	}
	return payload[payloadHeaderLen:], true
}

// payloadReader walks a serialized payload.
type payloadReader struct {
	b   []byte
	bad bool
}

func (r *payloadReader) u32() uint32 {
	if r.bad || len(r.b) < 4 {
		r.bad = true
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *payloadReader) u64() uint64 {
	if r.bad || len(r.b) < 8 {
		r.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *payloadReader) bytes() []byte {
	n := int(r.u32())
	if r.bad || len(r.b) < n {
		r.bad = true
		return nil
	}
	v := r.b[:n:n]
	r.b = r.b[n:]
	return v
}

// deserializeEntry rebuilds an object (and its absolute expiry) from a
// DUMP payload. The seed feeds the rebuilt object's nested tables.
func deserializeEntry(payload []byte, seed int64) (*obj.Object, int64, error) {
	if len(payload) < payloadHeaderLen+1 {
		return nil, 0, fmt.Errorf("payload truncated")
	}
	if payload[0] != migratePayloadVersion {
		return nil, 0, fmt.Errorf("payload version %d", payload[0])
	}
	expireAt := int64(binary.BigEndian.Uint64(payload[2:10]))
	typ := obj.Type(payload[payloadHeaderLen])
	if typ != obj.Type(payload[1]) {
		return nil, 0, fmt.Errorf("payload type mismatch")
	}
	r := &payloadReader{b: payload[payloadHeaderLen+1:]}
	var o *obj.Object
	switch typ {
	case obj.TString:
		o = obj.NewString(r.bytes())
	case obj.TList:
		o = obj.NewList()
		n := r.u32()
		for i := uint32(0); i < n && !r.bad; i++ {
			if v := r.bytes(); !r.bad {
				o.List().PushTail(v)
			}
		}
	case obj.THash:
		o = obj.NewHash(seed)
		n := r.u32()
		for i := uint32(0); i < n && !r.bad; i++ {
			f := r.bytes()
			v := r.bytes()
			if !r.bad {
				o.HashSet(string(f), v)
			}
		}
	case obj.TSet:
		o = obj.NewSet(seed)
		n := r.u32()
		for i := uint32(0); i < n && !r.bad; i++ {
			if m := r.bytes(); !r.bad {
				o.SetAdd(string(m))
			}
		}
	case obj.TZSet:
		o = obj.NewZSet(seed)
		n := r.u32()
		for i := uint32(0); i < n && !r.bad; i++ {
			m := r.bytes()
			score := math.Float64frombits(r.u64())
			if !r.bad {
				o.ZAdd(string(m), score)
			}
		}
	default:
		return nil, 0, fmt.Errorf("payload names unknown type %d", typ)
	}
	if r.bad || len(r.b) != 0 {
		return nil, 0, fmt.Errorf("payload corrupt")
	}
	return o, expireAt, nil
}

// cmdDump serializes a key for migration; nil bulk when absent — absence
// is an answer (the key already moved), not an error.
func cmdDump(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	payload, ok := s.SerializedEntry(dbi, string(argv[1]))
	if !ok {
		return resp.AppendNullBulk(nil), false
	}
	return resp.AppendBulk(nil, payload), false
}

// cmdRestore installs a serialized entry: RESTORE key payload
// [REPLACE | IFEQ prevpayload]. Plain RESTORE refuses to overwrite
// (BUSYKEY); REPLACE overwrites unconditionally; IFEQ — the mover's form —
// applies only when the key is absent or its current value bytes equal
// prevpayload's (i.e. the target still holds this mover's previous
// transfer attempt, not a fresher ASKING-redirected client write), and
// replies :1 applied / :0 diverged.
func cmdRestore(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	key, payload := string(argv[1]), argv[2]
	mode, prev := "", []byte(nil)
	switch len(argv) {
	case 3:
	case 4:
		mode = strings.ToLower(string(argv[3]))
		if mode != "replace" {
			return resp.AppendError(nil, "ERR syntax error"), false
		}
	case 5:
		mode = strings.ToLower(string(argv[3]))
		if mode != "ifeq" {
			return resp.AppendError(nil, "ERR syntax error"), false
		}
		prev = argv[4]
	default:
		return resp.AppendError(nil, "ERR wrong number of arguments for 'restore' command"), false
	}
	o, expireAt, err := deserializeEntry(payload, s.NewSeed())
	if err != nil {
		return resp.AppendError(nil, "ERR Bad data format or checksum in RESTORE payload"), false
	}
	existing, hasKey := s.SerializedEntry(dbi, key)
	switch mode {
	case "":
		if hasKey {
			return resp.AppendError(nil, "BUSYKEY Target key name already exists."), false
		}
	case "ifeq":
		if hasKey {
			cur, _ := valueBytesOf(existing)
			want, okPrev := valueBytesOf(prev)
			if !okPrev || string(cur) != string(want) {
				return resp.AppendInt(nil, 0), false
			}
		}
	}
	s.setKey(dbi, key, o)
	if expireAt > 0 {
		s.setExpire(dbi, key, expireAt)
	}
	if mode == "ifeq" {
		return resp.AppendInt(nil, 1), true
	}
	return ok(), true
}

// cmdMigrateDel is the mover's source-side commit: delete the key only if
// its current canonical value bytes still equal the payload the mover
// transferred (:1), otherwise leave it and report :0 — the mover retries
// from a fresh DUMP. Running the comparison inside one store dispatch
// makes it atomic with respect to client writes on the same shard.
func cmdMigrateDel(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	key := string(argv[1])
	cur, hasKey := s.SerializedEntry(dbi, key)
	if !hasKey {
		return resp.AppendInt(nil, 0), false
	}
	curVal, _ := valueBytesOf(cur)
	wantVal, okWant := valueBytesOf(argv[2])
	if !okWant || string(curVal) != string(wantVal) {
		return resp.AppendInt(nil, 0), false
	}
	s.deleteKey(dbi, key)
	return resp.AppendInt(nil, 1), true
}

// KeysWhere collects up to limit live keys of a database satisfying pred,
// in sorted order — deterministic regardless of dict iteration order. The
// CLUSTER GETKEYSINSLOT surface rides on this (pred = "key hashes to the
// slot"); limit <= 0 means no limit.
func (s *Store) KeysWhere(dbi, limit int, pred func(key string) bool) []string {
	var keys []string
	s.EachEntry(func(d int, key string, _ *obj.Object, _ int64) bool {
		if d == dbi && pred(key) {
			keys = append(keys, key)
		}
		return true
	})
	sort.Strings(keys)
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	return keys
}

func init() {
	register("dump", cmdDump, 2, false, 1)
	register("restore", cmdRestore, -3, true, 1)
	register("migratedel", cmdMigrateDel, 3, true, 1)
	registerServer("asking", 1)
}
