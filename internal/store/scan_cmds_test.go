package store

import (
	"fmt"
	"strconv"
	"testing"

	"skv/internal/resp"
)

// scanAll drives SCAN to completion, returning all keys seen.
func scanAll(t *testing.T, s *Store, match string) map[string]bool {
	t.Helper()
	seen := map[string]bool{}
	cursor := "0"
	for i := 0; ; i++ {
		args := [][]byte{[]byte("SCAN"), []byte(cursor)}
		if match != "" {
			args = append(args, []byte("MATCH"), []byte(match))
		}
		args = append(args, []byte("COUNT"), []byte("17"))
		reply, _ := s.Exec(0, args)
		var r resp.Reader
		r.Feed(reply)
		v, ok, err := r.ReadValue()
		if err != nil || !ok || len(v.Array) != 2 {
			t.Fatalf("bad SCAN reply: %q", reply)
		}
		for _, k := range v.Array[1].Array {
			seen[string(k.Str)] = true
		}
		cursor = string(v.Array[0].Str)
		if cursor == "0" || i > 1<<16 {
			break
		}
	}
	return seen
}

func TestScanKeyspaceComplete(t *testing.T) {
	s, _ := testStore()
	for i := 0; i < 500; i++ {
		run(t, s, fmt.Sprintf("SET key:%d v", i))
	}
	seen := scanAll(t, s, "")
	if len(seen) < 500 {
		t.Fatalf("SCAN covered %d/500 keys", len(seen))
	}
	for i := 0; i < 500; i++ {
		if !seen[fmt.Sprintf("key:%d", i)] {
			t.Fatalf("key:%d missed by SCAN", i)
		}
	}
}

func TestScanMatchFilter(t *testing.T) {
	s, _ := testStore()
	for i := 0; i < 50; i++ {
		run(t, s, fmt.Sprintf("SET user:%d v", i))
		run(t, s, fmt.Sprintf("SET session:%d v", i))
	}
	seen := scanAll(t, s, "user:*")
	if len(seen) != 50 {
		t.Fatalf("MATCH user:* returned %d keys", len(seen))
	}
	for k := range seen {
		if k[:5] != "user:" {
			t.Fatalf("MATCH leaked %q", k)
		}
	}
}

func TestScanSkipsExpired(t *testing.T) {
	s, now := testStore()
	run(t, s, "SET live v")
	run(t, s, "SET dead v")
	run(t, s, "PEXPIRE dead 10")
	*now += 20
	seen := scanAll(t, s, "")
	if seen["dead"] {
		t.Fatal("SCAN returned an expired key")
	}
	if !seen["live"] {
		t.Fatal("SCAN missed a live key")
	}
}

func TestScanBadArgs(t *testing.T) {
	s, _ := testStore()
	wantErrContains(t, s, "SCAN notanumber", "invalid cursor")
	wantErrContains(t, s, "SCAN 0 MATCH", "syntax")
	wantErrContains(t, s, "SCAN 0 COUNT 0", "syntax")
	wantErrContains(t, s, "SCAN 0 BOGUS x", "syntax")
}

func hscanAll(t *testing.T, s *Store, key string) map[string]string {
	t.Helper()
	out := map[string]string{}
	cursor := uint64(0)
	for i := 0; ; i++ {
		reply, _ := s.Exec(0, [][]byte{[]byte("HSCAN"), []byte(key),
			[]byte(strconv.FormatUint(cursor, 10)), []byte("COUNT"), []byte("13")})
		var r resp.Reader
		r.Feed(reply)
		v, _, _ := r.ReadValue()
		items := v.Array[1].Array
		for j := 0; j+1 < len(items); j += 2 {
			out[string(items[j].Str)] = string(items[j+1].Str)
		}
		c, _ := strconv.ParseUint(string(v.Array[0].Str), 10, 64)
		cursor = c
		if cursor == 0 || i > 1<<16 {
			break
		}
	}
	return out
}

func TestHScanBothEncodings(t *testing.T) {
	s, _ := testStore()
	// Listpack-encoded hash.
	run(t, s, "HSET small f1 v1 f2 v2")
	got := hscanAll(t, s, "small")
	if len(got) != 2 || got["f1"] != "v1" {
		t.Fatalf("HSCAN listpack: %v", got)
	}
	// Force hashtable encoding.
	for i := 0; i < 200; i++ {
		run(t, s, fmt.Sprintf("HSET big f%d v%d", i, i))
	}
	wantStr(t, s, "OBJECT ENCODING big", "hashtable")
	got = hscanAll(t, s, "big")
	if len(got) != 200 {
		t.Fatalf("HSCAN ht covered %d/200 fields", len(got))
	}
	if got["f123"] != "v123" {
		t.Fatalf("HSCAN value mismatch: %q", got["f123"])
	}
}

func TestSScanAndZScan(t *testing.T) {
	s, _ := testStore()
	for i := 0; i < 600; i++ {
		run(t, s, fmt.Sprintf("SADD s member-%d", i)) // strings → hashtable
		run(t, s, fmt.Sprintf("ZADD z %d member-%d", i, i))
	}
	// SSCAN.
	seen := map[string]bool{}
	cursor := uint64(0)
	for {
		reply, _ := s.Exec(0, [][]byte{[]byte("SSCAN"), []byte("s"),
			[]byte(strconv.FormatUint(cursor, 10)), []byte("COUNT"), []byte("50")})
		var r resp.Reader
		r.Feed(reply)
		v, _, _ := r.ReadValue()
		for _, it := range v.Array[1].Array {
			seen[string(it.Str)] = true
		}
		c, _ := strconv.ParseUint(string(v.Array[0].Str), 10, 64)
		cursor = c
		if cursor == 0 {
			break
		}
	}
	if len(seen) != 600 {
		t.Fatalf("SSCAN covered %d/600", len(seen))
	}
	// ZSCAN (skiplist-encoded by now) returns member/score pairs.
	reply, _ := s.Exec(0, [][]byte{[]byte("ZSCAN"), []byte("z"), []byte("0"), []byte("COUNT"), []byte("1000000")})
	var r resp.Reader
	r.Feed(reply)
	v, _, _ := r.ReadValue()
	if len(v.Array[1].Array)%2 != 0 || len(v.Array[1].Array) == 0 {
		t.Fatalf("ZSCAN items: %d", len(v.Array[1].Array))
	}
}

func TestScanMissingKeyAndWrongType(t *testing.T) {
	s, _ := testStore()
	reply, _ := s.Exec(0, [][]byte{[]byte("HSCAN"), []byte("nope"), []byte("0")})
	var r resp.Reader
	r.Feed(reply)
	v, _, _ := r.ReadValue()
	if string(v.Array[0].Str) != "0" || len(v.Array[1].Array) != 0 {
		t.Fatalf("HSCAN on missing key: %s", v.String())
	}
	run(t, s, "SET str v")
	wantErrContains(t, s, "HSCAN str 0", "WRONGTYPE")
	wantErrContains(t, s, "SSCAN str 0", "WRONGTYPE")
	wantErrContains(t, s, "ZSCAN str 0", "WRONGTYPE")
}
