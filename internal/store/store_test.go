package store

import (
	"fmt"
	"strings"
	"testing"

	"skv/internal/resp"
)

// testStore builds a store with a controllable millisecond clock.
func testStore() (*Store, *int64) {
	now := int64(1_000_000)
	s := New(Options{Seed: 42, Clock: func() int64 { return now }})
	return s, &now
}

// run executes a command built from space-separated words (no binary args).
func run(t *testing.T, s *Store, line string) resp.Value {
	t.Helper()
	words := strings.Split(line, " ")
	argv := make([][]byte, len(words))
	for i, w := range words {
		argv[i] = []byte(w)
	}
	reply, _ := s.Exec(0, argv)
	var r resp.Reader
	r.Feed(reply)
	v, ok, err := r.ReadValue()
	if err != nil || !ok {
		t.Fatalf("command %q produced unparsable reply %q: %v", line, reply, err)
	}
	return v
}

func wantStr(t *testing.T, s *Store, cmd, want string) {
	t.Helper()
	if got := run(t, s, cmd).String(); got != want {
		t.Fatalf("%q = %q, want %q", cmd, got, want)
	}
}

func wantInt(t *testing.T, s *Store, cmd string, want int64) {
	t.Helper()
	v := run(t, s, cmd)
	if v.Type != resp.TypeInteger || v.Int != want {
		t.Fatalf("%q = %s, want :%d", cmd, v.String(), want)
	}
}

func wantNil(t *testing.T, s *Store, cmd string) {
	t.Helper()
	if v := run(t, s, cmd); !v.Null {
		t.Fatalf("%q = %s, want nil", cmd, v.String())
	}
}

func wantErrContains(t *testing.T, s *Store, cmd, frag string) {
	t.Helper()
	v := run(t, s, cmd)
	if !v.IsError() || !strings.Contains(v.String(), frag) {
		t.Fatalf("%q = %s, want error containing %q", cmd, v.String(), frag)
	}
}

func TestSetGetDelExists(t *testing.T) {
	s, _ := testStore()
	wantStr(t, s, "SET k hello", "OK")
	wantStr(t, s, "GET k", "hello")
	wantInt(t, s, "EXISTS k", 1)
	wantInt(t, s, "DEL k", 1)
	wantNil(t, s, "GET k")
	wantInt(t, s, "EXISTS k", 0)
	wantInt(t, s, "DEL k", 0)
}

func TestSetNXXXOptions(t *testing.T) {
	s, _ := testStore()
	wantStr(t, s, "SET k v1 NX", "OK")
	wantNil(t, s, "SET k v2 NX")
	wantStr(t, s, "GET k", "v1")
	wantStr(t, s, "SET k v3 XX", "OK")
	wantStr(t, s, "GET k", "v3")
	wantNil(t, s, "SET missing v XX")
	wantInt(t, s, "SETNX k zzz", 0)
	wantInt(t, s, "SETNX fresh yes", 1)
}

func TestSetWithExpiry(t *testing.T) {
	s, now := testStore()
	wantStr(t, s, "SET k v EX 10", "OK")
	wantInt(t, s, "TTL k", 10)
	*now += 5_000
	wantInt(t, s, "TTL k", 5)
	*now += 6_000
	wantNil(t, s, "GET k")
	wantInt(t, s, "TTL k", -2)
}

func TestSetEXPSetEX(t *testing.T) {
	s, now := testStore()
	wantStr(t, s, "SETEX k 2 v", "OK")
	wantStr(t, s, "PSETEX k2 1500 v2", "OK")
	pttl := run(t, s, "PTTL k2")
	if pttl.Int <= 0 || pttl.Int > 1500 {
		t.Fatalf("PTTL = %d", pttl.Int)
	}
	*now += 2_100
	wantNil(t, s, "GET k")
	wantNil(t, s, "GET k2")
	wantErrContains(t, s, "SETEX k 0 v", "invalid expire")
}

func TestExpirePersist(t *testing.T) {
	s, now := testStore()
	run(t, s, "SET k v")
	wantInt(t, s, "EXPIRE k 100", 1)
	wantInt(t, s, "PERSIST k", 1)
	wantInt(t, s, "TTL k", -1)
	wantInt(t, s, "PERSIST k", 0)
	wantInt(t, s, "EXPIRE missing 100", 0)
	// Non-positive expire deletes immediately.
	wantInt(t, s, "EXPIRE k -1", 1)
	wantNil(t, s, "GET k")
	_ = now
}

func TestIncrDecrFamily(t *testing.T) {
	s, _ := testStore()
	wantInt(t, s, "INCR c", 1)
	wantInt(t, s, "INCR c", 2)
	wantInt(t, s, "INCRBY c 10", 12)
	wantInt(t, s, "DECR c", 11)
	wantInt(t, s, "DECRBY c 11", 0)
	run(t, s, "SET str notanumber")
	wantErrContains(t, s, "INCR str", "not an integer")
	// INCR result stays int-encoded and GET-able.
	wantStr(t, s, "GET c", "0")
}

func TestAppendStrlenGetRangeSetRange(t *testing.T) {
	s, _ := testStore()
	wantInt(t, s, "APPEND k Hello", 5)
	wantInt(t, s, "APPEND k .World", 11)
	wantInt(t, s, "STRLEN k", 11)
	wantStr(t, s, "GETRANGE k 0 4", "Hello")
	wantStr(t, s, "GETRANGE k -5 -1", "World")
	wantInt(t, s, "SETRANGE k 6 Redis", 11)
	wantStr(t, s, "GET k", "Hello.Redis")
	wantInt(t, s, "STRLEN missing", 0)
}

func TestMSetMGet(t *testing.T) {
	s, _ := testStore()
	wantStr(t, s, "MSET a 1 b 2 c 3", "OK")
	v := run(t, s, "MGET a b missing c")
	if len(v.Array) != 4 || v.Array[0].String() != "1" || !v.Array[2].Null || v.Array[3].String() != "3" {
		t.Fatalf("MGET = %s", v.String())
	}
	wantErrContains(t, s, "MSET a 1 b", "wrong number")
}

func TestGetSet(t *testing.T) {
	s, _ := testStore()
	wantNil(t, s, "GETSET k v1")
	wantStr(t, s, "GETSET k v2", "v1")
	wantStr(t, s, "GET k", "v2")
}

func TestTypeAndWrongType(t *testing.T) {
	s, _ := testStore()
	run(t, s, "SET str v")
	run(t, s, "LPUSH list a")
	run(t, s, "HSET hash f v")
	run(t, s, "SADD set m")
	run(t, s, "ZADD zset 1 m")
	wantStr(t, s, "TYPE str", "string")
	wantStr(t, s, "TYPE list", "list")
	wantStr(t, s, "TYPE hash", "hash")
	wantStr(t, s, "TYPE set", "set")
	wantStr(t, s, "TYPE zset", "zset")
	wantStr(t, s, "TYPE missing", "none")
	wantErrContains(t, s, "GET list", "WRONGTYPE")
	wantErrContains(t, s, "LPUSH str x", "WRONGTYPE")
	wantErrContains(t, s, "HGET list f", "WRONGTYPE")
	wantErrContains(t, s, "SADD zset m", "WRONGTYPE")
	wantErrContains(t, s, "ZADD set 1 m", "WRONGTYPE")
	wantErrContains(t, s, "INCR hash", "WRONGTYPE")
}

func TestListCommands(t *testing.T) {
	s, _ := testStore()
	wantInt(t, s, "RPUSH l a b c", 3)
	wantInt(t, s, "LPUSH l z", 4)
	wantInt(t, s, "LLEN l", 4)
	wantStr(t, s, "LINDEX l 0", "z")
	wantStr(t, s, "LINDEX l -1", "c")
	v := run(t, s, "LRANGE l 0 -1")
	if v.String() != "[z a b c]" {
		t.Fatalf("LRANGE = %s", v.String())
	}
	wantStr(t, s, "LPOP l", "z")
	wantStr(t, s, "RPOP l", "c")
	wantStr(t, s, "LSET l 0 A", "OK")
	wantStr(t, s, "LINDEX l 0", "A")
	wantErrContains(t, s, "LSET l 9 x", "index out of range")
	wantErrContains(t, s, "LSET missing 0 x", "no such key")
	// Popping everything removes the key.
	run(t, s, "LPOP l")
	run(t, s, "LPOP l")
	wantInt(t, s, "EXISTS l", 0)
	wantNil(t, s, "LPOP l")
}

func TestLRem(t *testing.T) {
	s, _ := testStore()
	run(t, s, "RPUSH l a b a c a")
	wantInt(t, s, "LREM l 2 a", 2)
	if v := run(t, s, "LRANGE l 0 -1"); v.String() != "[b c a]" {
		t.Fatalf("after LREM: %s", v.String())
	}
	run(t, s, "RPUSH l b")
	wantInt(t, s, "LREM l -1 b", 1)
	if v := run(t, s, "LRANGE l 0 -1"); v.String() != "[b c a]" {
		t.Fatalf("after LREM tail: %s", v.String())
	}
	wantInt(t, s, "LREM l 0 zzz", 0)
}

func TestRPopLPush(t *testing.T) {
	s, _ := testStore()
	run(t, s, "RPUSH src a b c")
	wantStr(t, s, "RPOPLPUSH src dst", "c")
	wantStr(t, s, "RPOPLPUSH src dst", "b")
	if v := run(t, s, "LRANGE dst 0 -1"); v.String() != "[b c]" {
		t.Fatalf("dst = %s", v.String())
	}
	wantNil(t, s, "RPOPLPUSH missing dst")
}

func TestHashCommands(t *testing.T) {
	s, _ := testStore()
	wantInt(t, s, "HSET h f1 v1 f2 v2", 2)
	wantInt(t, s, "HSET h f1 v1b", 0)
	wantStr(t, s, "HGET h f1", "v1b")
	wantNil(t, s, "HGET h missing")
	wantNil(t, s, "HGET nosuchhash f")
	wantInt(t, s, "HLEN h", 2)
	wantInt(t, s, "HEXISTS h f2", 1)
	wantInt(t, s, "HEXISTS h zz", 0)
	v := run(t, s, "HMGET h f1 zz f2")
	if len(v.Array) != 3 || !v.Array[1].Null {
		t.Fatalf("HMGET = %s", v.String())
	}
	wantInt(t, s, "HDEL h f1 zz", 1)
	wantInt(t, s, "HLEN h", 1)
	wantInt(t, s, "HINCRBY h counter 5", 5)
	wantInt(t, s, "HINCRBY h counter -2", 3)
	wantStr(t, s, "HMSET h2 a 1 b 2", "OK")
	wantInt(t, s, "HLEN h2", 2)
	// Deleting all fields removes the key.
	run(t, s, "HDEL h2 a b")
	run(t, s, "HDEL h f2 counter")
	wantInt(t, s, "EXISTS h", 0)
}

func TestHashGetAllKeysVals(t *testing.T) {
	s, _ := testStore()
	run(t, s, "HSET h a 1 b 2")
	all := run(t, s, "HGETALL h")
	if len(all.Array) != 4 {
		t.Fatalf("HGETALL len=%d", len(all.Array))
	}
	if v := run(t, s, "HKEYS h"); len(v.Array) != 2 {
		t.Fatalf("HKEYS = %s", v.String())
	}
	if v := run(t, s, "HVALS h"); len(v.Array) != 2 {
		t.Fatalf("HVALS = %s", v.String())
	}
	if v := run(t, s, "HGETALL missing"); len(v.Array) != 0 {
		t.Fatalf("HGETALL missing = %s", v.String())
	}
}

func TestSetCommands(t *testing.T) {
	s, _ := testStore()
	wantInt(t, s, "SADD s a b c", 3)
	wantInt(t, s, "SADD s a", 0)
	wantInt(t, s, "SCARD s", 3)
	wantInt(t, s, "SISMEMBER s a", 1)
	wantInt(t, s, "SISMEMBER s z", 0)
	wantInt(t, s, "SREM s a z", 1)
	wantInt(t, s, "SCARD s", 2)
	if v := run(t, s, "SMEMBERS s"); len(v.Array) != 2 {
		t.Fatalf("SMEMBERS = %s", v.String())
	}
	// SPOP until empty deletes the key.
	run(t, s, "SPOP s")
	run(t, s, "SPOP s")
	wantInt(t, s, "EXISTS s", 0)
	wantNil(t, s, "SPOP s")
	wantNil(t, s, "SRANDMEMBER s")
}

func TestSetOperations(t *testing.T) {
	s, _ := testStore()
	run(t, s, "SADD a 1 2 3 4")
	run(t, s, "SADD b 3 4 5")
	if v := run(t, s, "SINTER a b"); v.String() != "[3 4]" {
		t.Fatalf("SINTER = %s", v.String())
	}
	if v := run(t, s, "SUNION a b"); v.String() != "[1 2 3 4 5]" {
		t.Fatalf("SUNION = %s", v.String())
	}
	if v := run(t, s, "SDIFF a b"); v.String() != "[1 2]" {
		t.Fatalf("SDIFF = %s", v.String())
	}
	if v := run(t, s, "SINTER a missing"); len(v.Array) != 0 {
		t.Fatalf("SINTER with missing = %s", v.String())
	}
}

func TestZSetCommands(t *testing.T) {
	s, _ := testStore()
	wantInt(t, s, "ZADD z 1 a 2 b 3 c", 3)
	wantInt(t, s, "ZADD z 10 a", 0)
	wantInt(t, s, "ZCARD z", 3)
	wantStr(t, s, "ZSCORE z a", "10")
	wantNil(t, s, "ZSCORE z missing")
	wantInt(t, s, "ZRANK z b", 0)
	wantInt(t, s, "ZRANK z a", 2)
	if v := run(t, s, "ZRANGE z 0 -1"); v.String() != "[b c a]" {
		t.Fatalf("ZRANGE = %s", v.String())
	}
	if v := run(t, s, "ZREVRANGE z 0 0"); v.String() != "[a]" {
		t.Fatalf("ZREVRANGE = %s", v.String())
	}
	if v := run(t, s, "ZRANGE z 0 -1 WITHSCORES"); len(v.Array) != 6 {
		t.Fatalf("WITHSCORES = %s", v.String())
	}
	if v := run(t, s, "ZRANGEBYSCORE z 2 10"); v.String() != "[b c a]" {
		t.Fatalf("ZRANGEBYSCORE = %s", v.String())
	}
	wantStr(t, s, "ZINCRBY z 5 b", "7")
	wantInt(t, s, "ZREM z a b", 2)
	wantInt(t, s, "ZCARD z", 1)
	run(t, s, "ZREM z c")
	wantInt(t, s, "EXISTS z", 0)
	wantErrContains(t, s, "ZADD z notafloat m", "not a valid float")
}

func TestKeysPatternAndRandomKey(t *testing.T) {
	s, _ := testStore()
	for i := 0; i < 5; i++ {
		run(t, s, fmt.Sprintf("SET user:%d x", i))
	}
	run(t, s, "SET other y")
	if v := run(t, s, "KEYS user:*"); len(v.Array) != 5 {
		t.Fatalf("KEYS user:* = %s", v.String())
	}
	if v := run(t, s, "KEYS *"); len(v.Array) != 6 {
		t.Fatalf("KEYS * = %s", v.String())
	}
	if v := run(t, s, "KEYS user:?"); len(v.Array) != 5 {
		t.Fatalf("KEYS user:? = %s", v.String())
	}
	if v := run(t, s, "RANDOMKEY"); v.Null {
		t.Fatal("RANDOMKEY on non-empty returned nil")
	}
}

func TestRename(t *testing.T) {
	s, _ := testStore()
	run(t, s, "SET a v")
	run(t, s, "EXPIRE a 100")
	wantStr(t, s, "RENAME a b", "OK")
	wantNil(t, s, "GET a")
	wantStr(t, s, "GET b", "v")
	if ttl := run(t, s, "TTL b"); ttl.Int <= 0 {
		t.Fatalf("TTL not carried by RENAME: %d", ttl.Int)
	}
	wantErrContains(t, s, "RENAME missing x", "no such key")
}

func TestDBSizeFlush(t *testing.T) {
	s, _ := testStore()
	run(t, s, "SET a 1")
	run(t, s, "SET b 2")
	wantInt(t, s, "DBSIZE", 2)
	wantStr(t, s, "FLUSHDB", "OK")
	wantInt(t, s, "DBSIZE", 0)
	run(t, s, "SET c 3")
	wantStr(t, s, "FLUSHALL", "OK")
	wantInt(t, s, "DBSIZE", 0)
}

func TestPingEchoInfo(t *testing.T) {
	s, _ := testStore()
	wantStr(t, s, "PING", "PONG")
	wantStr(t, s, "PING hello", "hello")
	wantStr(t, s, "ECHO boomerang", "boomerang")
	v := run(t, s, "INFO")
	if v.Type != resp.TypeBulk || !strings.Contains(v.String(), "dirty") {
		t.Fatalf("INFO = %s", v.String())
	}
}

func TestUnknownCommandAndArity(t *testing.T) {
	s, _ := testStore()
	wantErrContains(t, s, "NOSUCHCMD a b", "unknown command")
	wantErrContains(t, s, "GET", "wrong number of arguments")
	wantErrContains(t, s, "SET onlykey", "wrong number of arguments")
	reply, dirty := s.Exec(0, nil)
	if dirty || !strings.Contains(string(reply), "empty") {
		t.Fatal("empty argv handling")
	}
}

func TestDirtyFlagDrivesReplication(t *testing.T) {
	s, _ := testStore()
	checks := []struct {
		cmd   string
		dirty bool
	}{
		{"SET k v", true},
		{"GET k", false},
		{"DEL k", true},
		{"DEL k", false}, // deleting nothing is clean
		{"EXISTS k", false},
		{"LPUSH l a", true},
		{"LRANGE l 0 -1", false},
		{"SADD s m", true},
		{"SADD s m", false}, // no-op add is clean
		{"PING", false},
	}
	for _, c := range checks {
		words := strings.Split(c.cmd, " ")
		argv := make([][]byte, len(words))
		for i, w := range words {
			argv[i] = []byte(w)
		}
		_, dirty := s.Exec(0, argv)
		if dirty != c.dirty {
			t.Errorf("%q dirty=%v, want %v", c.cmd, dirty, c.dirty)
		}
	}
}

func TestIsWriteCommand(t *testing.T) {
	for _, w := range []string{"set", "SET", "del", "lpush", "hset", "zadd", "expire", "flushall"} {
		if !IsWriteCommand(w) {
			t.Errorf("%s should be a write command", w)
		}
	}
	for _, r := range []string{"get", "GET", "mget", "lrange", "ping", "keys", "nosuch"} {
		if IsWriteCommand(r) {
			t.Errorf("%s should not be a write command", r)
		}
	}
	if !KnownCommand("get") || KnownCommand("bogus") {
		t.Error("KnownCommand wrong")
	}
}

func TestMultipleDatabases(t *testing.T) {
	s, _ := testStore()
	s.Exec(0, [][]byte{[]byte("SET"), []byte("k"), []byte("db0")})
	s.Exec(1, [][]byte{[]byte("SET"), []byte("k"), []byte("db1")})
	r0, _ := s.Exec(0, [][]byte{[]byte("GET"), []byte("k")})
	r1, _ := s.Exec(1, [][]byte{[]byte("GET"), []byte("k")})
	if string(r0) == string(r1) {
		t.Fatal("databases not isolated")
	}
	if s.NumDBs() != 16 {
		t.Fatalf("NumDBs=%d", s.NumDBs())
	}
}

func TestActiveExpireCycle(t *testing.T) {
	s, now := testStore()
	for i := 0; i < 100; i++ {
		run(t, s, fmt.Sprintf("SET k%d v", i))
		run(t, s, fmt.Sprintf("PEXPIRE k%d 100", i))
	}
	*now += 200
	expired := 0
	for i := 0; i < 100; i++ {
		expired += s.ActiveExpireCycle(20)
	}
	if expired < 90 {
		t.Fatalf("active cycle expired only %d/100", expired)
	}
	wantInt(t, s, "DBSIZE", int64(100-expired))
}

func TestLazyExpirationOnLookup(t *testing.T) {
	s, now := testStore()
	run(t, s, "SET k v")
	run(t, s, "PEXPIRE k 50")
	*now += 49
	wantStr(t, s, "GET k", "v")
	*now += 2
	wantNil(t, s, "GET k")
	wantInt(t, s, "DBSIZE", 0) // lazy deletion actually removed it
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		p, s string
		want bool
	}{
		{"*", "anything", true},
		{"user:*", "user:17", true},
		{"user:*", "session:17", false},
		{"h?llo", "hello", true},
		{"h?llo", "hllo", false},
		{"h[ae]llo", "hallo", true},
		{"h[ae]llo", "hillo", false},
		{"h[^e]llo", "hallo", true},
		{"h[^e]llo", "hello", false},
		{"h[a-c]llo", "hbllo", true},
		{"h[a-c]llo", "hdllo", false},
		{"", "", true},
		{"", "x", false},
		{"ab\\*", "ab*", true},
		{"ab\\*", "abc", false},
		{"**", "abc", true},
		{"a*c", "abbbc", true},
		{"a*c", "abbbd", false},
	}
	for _, c := range cases {
		if GlobMatch(c.p, c.s) != c.want {
			t.Errorf("GlobMatch(%q,%q) != %v", c.p, c.s, c.want)
		}
	}
}
