package store

import (
	"fmt"
	"strings"

	"skv/internal/resp"
)

func cmdPing(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	if len(argv) == 2 {
		return resp.AppendBulk(nil, argv[1]), false
	}
	return resp.AppendSimple(nil, "PONG"), false
}

func cmdEcho(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return resp.AppendBulk(nil, argv[1]), false
}

// cmdInfo is the Redis-style sectioned INFO command. With no argument (or
// "default"/"all"/"everything") every section renders; with a section name
// only that section renders; an unknown section is an error. Sections come
// from InfoSections: the embedding server's InfoProvider callback plus the
// store's own Stats/Keyspace fallbacks.
func cmdInfo(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	if len(argv) > 2 {
		return resp.AppendError(nil, "ERR wrong number of arguments for 'info' command"), false
	}
	section := ""
	if len(argv) == 2 {
		section = strings.ToLower(string(argv[1]))
	}
	all := section == "" || section == "default" || section == "all" || section == "everything"
	var b strings.Builder
	matched := false
	for _, sec := range s.InfoSections() {
		if !all && !strings.EqualFold(sec.Name, section) {
			continue
		}
		matched = true
		b.WriteString("# ")
		b.WriteString(sec.Name)
		b.WriteString("\r\n")
		for _, line := range sec.Lines {
			b.WriteString(line)
			b.WriteString("\r\n")
		}
		b.WriteString("\r\n")
	}
	if !matched {
		return resp.AppendError(nil, fmt.Sprintf("ERR unknown INFO section '%s'", section)), false
	}
	return resp.AppendBulkString(nil, b.String()), false
}

// commandTable maps lowercase command names to their descriptors. Arity
// follows Redis: positive = exact argc, negative = minimum argc. FirstKey
// is the argv index of the first key argument (0 = keyless).
var commandTable = make(map[string]*Command)

// register installs one descriptor; name must be lowercase. Single-key
// commands get LastKey == FirstKey with stride 1.
func register(name string, h func(*Store, int, [][]byte) ([]byte, bool), arity int, write bool, firstKey int) {
	registerKeys(name, h, arity, write, firstKey, firstKey, 1)
}

// registerKeys installs a descriptor with an explicit key pattern for
// multi-key commands (lastKey -1 = keys through the end of argv, step is
// the argv stride between keys).
func registerKeys(name string, h func(*Store, int, [][]byte) ([]byte, bool), arity int, write bool, firstKey, lastKey, step int) {
	commandTable[name] = &Command{
		Name: name, Arity: arity, Write: write,
		FirstKey: firstKey, LastKey: lastKey, KeyStep: step, handler: h,
	}
}

// registerServer installs a descriptor for a command the embedding server
// layer dispatches itself; the store refuses to execute it.
func registerServer(name string, arity int) {
	commandTable[name] = &Command{Name: name, Arity: arity, Server: true}
}

func init() {
	// Strings.
	register("set", cmdSet, -3, true, 1)
	register("setnx", cmdSetNX, 3, true, 1)
	register("setex", cmdSetEX, 4, true, 1)
	register("psetex", cmdPSetEX, 4, true, 1)
	register("get", cmdGet, 2, false, 1)
	register("getset", cmdGetSet, 3, true, 1)
	registerKeys("mset", cmdMSet, -3, true, 1, -1, 2)
	registerKeys("mget", cmdMGet, -2, false, 1, -1, 1)
	register("append", cmdAppend, 3, true, 1)
	register("strlen", cmdStrlen, 2, false, 1)
	register("getrange", cmdGetRange, 4, false, 1)
	register("setrange", cmdSetRange, 4, true, 1)
	register("incr", cmdIncr, 2, true, 1)
	register("decr", cmdDecr, 2, true, 1)
	register("incrby", cmdIncrBy, 3, true, 1)
	register("decrby", cmdDecrBy, 3, true, 1)

	// Keyspace.
	registerKeys("del", cmdDel, -2, true, 1, -1, 1)
	registerKeys("exists", cmdExists, -2, false, 1, -1, 1)
	register("expire", cmdExpire, 3, true, 1)
	register("pexpire", cmdPExpire, 3, true, 1)
	register("ttl", cmdTTL, 2, false, 1)
	register("pttl", cmdPTTL, 2, false, 1)
	register("persist", cmdPersist, 2, true, 1)
	register("type", cmdType, 2, false, 1)
	register("keys", cmdKeys, 2, false, 0) // argument is a pattern, not a key
	register("randomkey", cmdRandomKey, 1, false, 0)
	registerKeys("rename", cmdRename, 3, true, 1, 2, 1)
	register("dbsize", cmdDBSize, 1, false, 0)
	register("flushdb", cmdFlushDB, 1, true, 0)
	register("flushall", cmdFlushAll, 1, true, 0)

	// Lists.
	register("lpush", cmdLPush, -3, true, 1)
	register("rpush", cmdRPush, -3, true, 1)
	register("lpop", cmdLPop, 2, true, 1)
	register("rpop", cmdRPop, 2, true, 1)
	register("llen", cmdLLen, 2, false, 1)
	register("lrange", cmdLRange, 4, false, 1)
	register("lindex", cmdLIndex, 3, false, 1)
	register("lset", cmdLSet, 4, true, 1)
	register("lrem", cmdLRem, 4, true, 1)
	registerKeys("rpoplpush", cmdRPopLPush, 3, true, 1, 2, 1)

	// Hashes.
	register("hset", cmdHSet, -4, true, 1)
	register("hmset", cmdHMSetCompat, -4, true, 1)
	register("hget", cmdHGet, 3, false, 1)
	register("hmget", cmdHMGet, -3, false, 1)
	register("hdel", cmdHDel, -3, true, 1)
	register("hexists", cmdHExists, 3, false, 1)
	register("hlen", cmdHLen, 2, false, 1)
	register("hgetall", cmdHGetAll, 2, false, 1)
	register("hkeys", cmdHKeys, 2, false, 1)
	register("hvals", cmdHVals, 2, false, 1)
	register("hincrby", cmdHIncrBy, 4, true, 1)

	// Sets.
	register("sadd", cmdSAdd, -3, true, 1)
	register("srem", cmdSRem, -3, true, 1)
	register("sismember", cmdSIsMember, 3, false, 1)
	register("scard", cmdSCard, 2, false, 1)
	register("smembers", cmdSMembers, 2, false, 1)
	register("spop", cmdSPop, 2, true, 1)
	register("srandmember", cmdSRandMember, 2, false, 1)
	registerKeys("sinter", cmdSInter, -2, false, 1, -1, 1)
	registerKeys("sunion", cmdSUnion, -2, false, 1, -1, 1)
	registerKeys("sdiff", cmdSDiff, -2, false, 1, -1, 1)

	// Sorted sets.
	register("zadd", cmdZAdd, -4, true, 1)
	register("zrem", cmdZRem, -3, true, 1)
	register("zscore", cmdZScore, 3, false, 1)
	register("zcard", cmdZCard, 2, false, 1)
	register("zrank", cmdZRank, 3, false, 1)
	register("zincrby", cmdZIncrBy, 4, true, 1)
	register("zrange", cmdZRange, -4, false, 1)
	register("zrevrange", cmdZRevRange, -4, false, 1)
	register("zrangebyscore", cmdZRangeByScore, -4, false, 1)

	// Server.
	register("ping", cmdPing, -1, false, 0)
	register("echo", cmdEcho, 2, false, 0)
	register("info", cmdInfo, -1, false, 0)

	// Server-layer commands: one source of truth for the dispatch switch in
	// internal/server, never executable by the store itself.
	registerServer("select", 2)
	registerServer("psync", 3)
	registerServer("replconf", -2)
	registerServer("slaveof", 3)
	registerServer("replicaof", 3)
	registerServer("wait", 3)
	registerServer("skv.consistency", -1)
	registerServer("cluster", -2)
	registerServer("client", -2)
}

// cmdHMSetCompat implements the legacy HMSET (same as HSET, replies +OK).
func cmdHMSetCompat(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	reply, dirty := cmdHSet(s, dbi, argv)
	if len(reply) > 0 && reply[0] == resp.TypeError {
		return reply, dirty
	}
	return ok(), dirty
}
