package store

import (
	"fmt"

	"skv/internal/resp"
)

func cmdPing(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	if len(argv) == 2 {
		return resp.AppendBulk(nil, argv[1]), false
	}
	return resp.AppendSimple(nil, "PONG"), false
}

func cmdEcho(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return resp.AppendBulk(nil, argv[1]), false
}

func cmdInfo(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	body := "# Keyspace\r\n"
	for i := range s.dbs {
		if n := s.DBSize(i); n > 0 {
			body += fmt.Sprintf("db%d:keys=%d\r\n", i, n)
		}
	}
	body += fmt.Sprintf("# Stats\r\ndirty:%d\r\n", s.Dirty)
	return resp.AppendBulkString(nil, body), false
}

// commandTable maps lowercase command names to their implementations.
// Arity follows Redis: positive = exact argc, negative = minimum argc.
var commandTable = map[string]command{
	// Strings.
	"set":      {cmdSet, -3, true},
	"setnx":    {cmdSetNX, 3, true},
	"setex":    {cmdSetEX, 4, true},
	"psetex":   {cmdPSetEX, 4, true},
	"get":      {cmdGet, 2, false},
	"getset":   {cmdGetSet, 3, true},
	"mset":     {cmdMSet, -3, true},
	"mget":     {cmdMGet, -2, false},
	"append":   {cmdAppend, 3, true},
	"strlen":   {cmdStrlen, 2, false},
	"getrange": {cmdGetRange, 4, false},
	"setrange": {cmdSetRange, 4, true},
	"incr":     {cmdIncr, 2, true},
	"decr":     {cmdDecr, 2, true},
	"incrby":   {cmdIncrBy, 3, true},
	"decrby":   {cmdDecrBy, 3, true},

	// Keyspace.
	"del":       {cmdDel, -2, true},
	"exists":    {cmdExists, -2, false},
	"expire":    {cmdExpire, 3, true},
	"pexpire":   {cmdPExpire, 3, true},
	"ttl":       {cmdTTL, 2, false},
	"pttl":      {cmdPTTL, 2, false},
	"persist":   {cmdPersist, 2, true},
	"type":      {cmdType, 2, false},
	"keys":      {cmdKeys, 2, false},
	"randomkey": {cmdRandomKey, 1, false},
	"rename":    {cmdRename, 3, true},
	"dbsize":    {cmdDBSize, 1, false},
	"flushdb":   {cmdFlushDB, 1, true},
	"flushall":  {cmdFlushAll, 1, true},

	// Lists.
	"lpush":     {cmdLPush, -3, true},
	"rpush":     {cmdRPush, -3, true},
	"lpop":      {cmdLPop, 2, true},
	"rpop":      {cmdRPop, 2, true},
	"llen":      {cmdLLen, 2, false},
	"lrange":    {cmdLRange, 4, false},
	"lindex":    {cmdLIndex, 3, false},
	"lset":      {cmdLSet, 4, true},
	"lrem":      {cmdLRem, 4, true},
	"rpoplpush": {cmdRPopLPush, 3, true},

	// Hashes.
	"hset":    {cmdHSet, -4, true},
	"hmset":   {cmdHMSetCompat, -4, true},
	"hget":    {cmdHGet, 3, false},
	"hmget":   {cmdHMGet, -3, false},
	"hdel":    {cmdHDel, -3, true},
	"hexists": {cmdHExists, 3, false},
	"hlen":    {cmdHLen, 2, false},
	"hgetall": {cmdHGetAll, 2, false},
	"hkeys":   {cmdHKeys, 2, false},
	"hvals":   {cmdHVals, 2, false},
	"hincrby": {cmdHIncrBy, 4, true},

	// Sets.
	"sadd":        {cmdSAdd, -3, true},
	"srem":        {cmdSRem, -3, true},
	"sismember":   {cmdSIsMember, 3, false},
	"scard":       {cmdSCard, 2, false},
	"smembers":    {cmdSMembers, 2, false},
	"spop":        {cmdSPop, 2, true},
	"srandmember": {cmdSRandMember, 2, false},
	"sinter":      {cmdSInter, -2, false},
	"sunion":      {cmdSUnion, -2, false},
	"sdiff":       {cmdSDiff, -2, false},

	// Sorted sets.
	"zadd":          {cmdZAdd, -4, true},
	"zrem":          {cmdZRem, -3, true},
	"zscore":        {cmdZScore, 3, false},
	"zcard":         {cmdZCard, 2, false},
	"zrank":         {cmdZRank, 3, false},
	"zincrby":       {cmdZIncrBy, 4, true},
	"zrange":        {cmdZRange, -4, false},
	"zrevrange":     {cmdZRevRange, -4, false},
	"zrangebyscore": {cmdZRangeByScore, -4, false},

	// Server.
	"ping": {cmdPing, -1, false},
	"echo": {cmdEcho, 2, false},
	"info": {cmdInfo, -1, false},
}

// cmdHMSetCompat implements the legacy HMSET (same as HSET, replies +OK).
func cmdHMSetCompat(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	reply, dirty := cmdHSet(s, dbi, argv)
	if len(reply) > 0 && reply[0] == resp.TypeError {
		return reply, dirty
	}
	return ok(), dirty
}
