package store

import (
	"strconv"
	"strings"

	"skv/internal/obj"
	"skv/internal/resp"
)

// lookupString fetches a key that must hold a string; the bool distinguishes
// "missing" (nil, true) from "wrong type" (nil, false).
func lookupString(s *Store, dbi int, key string) (*obj.Object, bool) {
	o := s.lookup(dbi, key)
	if o == nil {
		return nil, true
	}
	if o.Type != obj.TString {
		return nil, false
	}
	return o, true
}

func cmdSet(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	key := string(argv[1])
	var nx, xx bool
	var expireAt int64
	for i := 3; i < len(argv); i++ {
		switch strings.ToUpper(string(argv[i])) {
		case "NX":
			nx = true
		case "XX":
			xx = true
		case "EX", "PX":
			if i+1 >= len(argv) {
				return syntaxErr(), false
			}
			n, err := strconv.ParseInt(string(argv[i+1]), 10, 64)
			if err != nil || n <= 0 {
				return resp.AppendError(nil, "ERR invalid expire time in 'set' command"), false
			}
			if strings.EqualFold(string(argv[i]), "EX") {
				n *= 1000
			}
			expireAt = s.clock() + n
			i++
		default:
			return syntaxErr(), false
		}
	}
	exists := s.lookup(dbi, key) != nil
	if (nx && exists) || (xx && !exists) {
		return resp.AppendNullBulk(nil), false
	}
	s.setKey(dbi, key, obj.NewString(argv[2]))
	if expireAt > 0 {
		s.setExpire(dbi, key, expireAt)
	}
	return ok(), true
}

func cmdSetNX(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	key := string(argv[1])
	if s.lookup(dbi, key) != nil {
		return resp.AppendInt(nil, 0), false
	}
	s.setKey(dbi, key, obj.NewString(argv[2]))
	return resp.AppendInt(nil, 1), true
}

func setWithTTL(s *Store, dbi int, argv [][]byte, unitMS int64) ([]byte, bool) {
	n, err := strconv.ParseInt(string(argv[2]), 10, 64)
	if err != nil || n <= 0 {
		return resp.AppendError(nil, "ERR invalid expire time"), false
	}
	key := string(argv[1])
	s.setKey(dbi, key, obj.NewString(argv[3]))
	s.setExpire(dbi, key, s.clock()+n*unitMS)
	return ok(), true
}

func cmdSetEX(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return setWithTTL(s, dbi, argv, 1000)
}

func cmdPSetEX(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return setWithTTL(s, dbi, argv, 1)
}

func cmdGet(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupString(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendNullBulk(nil), false
	}
	return resp.AppendBulk(nil, o.StringBytes()), false
}

func cmdGetSet(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupString(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	var reply []byte
	if o == nil {
		reply = resp.AppendNullBulk(nil)
	} else {
		reply = resp.AppendBulk(nil, o.StringBytes())
	}
	s.setKey(dbi, string(argv[1]), obj.NewString(argv[2]))
	return reply, true
}

func cmdMSet(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	if len(argv)%2 != 1 {
		return resp.AppendError(nil, "ERR wrong number of arguments for 'mset' command"), false
	}
	for i := 1; i < len(argv); i += 2 {
		s.setKey(dbi, string(argv[i]), obj.NewString(argv[i+1]))
	}
	return ok(), true
}

func cmdMGet(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	out := resp.AppendArrayHeader(nil, len(argv)-1)
	for _, k := range argv[1:] {
		o, okType := lookupString(s, dbi, string(k))
		if o == nil || !okType {
			out = resp.AppendNullBulk(out)
		} else {
			out = resp.AppendBulk(out, o.StringBytes())
		}
	}
	return out, false
}

func cmdAppend(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	key := string(argv[1])
	o, okType := lookupString(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		o = obj.NewString(argv[2])
		s.setKey(dbi, key, o)
		return resp.AppendInt(nil, int64(o.StringLen())), true
	}
	sd := o.MutableSDS()
	sd.Append(argv[2])
	s.Dirty++
	return resp.AppendInt(nil, int64(sd.Len())), true
}

func cmdStrlen(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupString(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendInt(nil, 0), false
	}
	return resp.AppendInt(nil, int64(o.StringLen())), false
}

func cmdGetRange(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	start, err1 := strconv.Atoi(string(argv[2]))
	end, err2 := strconv.Atoi(string(argv[3]))
	if err1 != nil || err2 != nil {
		return notInt(), false
	}
	o, okType := lookupString(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendBulk(nil, nil), false
	}
	// Work on the materialized bytes (handles int encoding).
	b := o.StringBytes()
	n := len(b)
	if start < 0 {
		start = n + start
		if start < 0 {
			start = 0
		}
	}
	if end < 0 {
		end = n + end
		if end < 0 {
			end = 0
		}
	}
	if end >= n {
		end = n - 1
	}
	if n == 0 || start > end || start >= n {
		return resp.AppendBulk(nil, nil), false
	}
	return resp.AppendBulk(nil, b[start:end+1]), false
}

func cmdSetRange(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	off, err := strconv.Atoi(string(argv[2]))
	if err != nil || off < 0 {
		return resp.AppendError(nil, "ERR offset is out of range"), false
	}
	key := string(argv[1])
	o, okType := lookupString(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		if len(argv[3]) == 0 {
			return resp.AppendInt(nil, 0), false
		}
		o = obj.NewString(nil)
		s.setKey(dbi, key, o)
	}
	n := o.MutableSDS().SetRange(off, argv[3])
	s.Dirty++
	return resp.AppendInt(nil, int64(n)), true
}

func incrDecr(s *Store, dbi int, argv [][]byte, delta int64) ([]byte, bool) {
	key := string(argv[1])
	o, okType := lookupString(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	var cur int64
	if o != nil {
		v, isInt := o.IntValue()
		if !isInt {
			return notInt(), false
		}
		cur = v
	}
	// Overflow check.
	if (delta > 0 && cur > (1<<63-1)-delta) || (delta < 0 && cur < -(1<<63-1)-delta) {
		return resp.AppendError(nil, "ERR increment or decrement would overflow"), false
	}
	cur += delta
	if o != nil {
		o.SetInt(cur)
		s.Dirty++
	} else {
		s.setKey(dbi, key, obj.NewStringFromInt(cur))
	}
	return resp.AppendInt(nil, cur), true
}

func cmdIncr(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return incrDecr(s, dbi, argv, 1)
}

func cmdDecr(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return incrDecr(s, dbi, argv, -1)
}

func cmdIncrBy(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	n, err := strconv.ParseInt(string(argv[2]), 10, 64)
	if err != nil {
		return notInt(), false
	}
	return incrDecr(s, dbi, argv, n)
}

func cmdDecrBy(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	n, err := strconv.ParseInt(string(argv[2]), 10, 64)
	if err != nil {
		return notInt(), false
	}
	return incrDecr(s, dbi, argv, -n)
}
