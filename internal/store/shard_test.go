package store

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"skv/internal/obj"
	"skv/internal/resp"
)

// shardedTestStore builds an n-shard store with a controllable clock.
func shardedTestStore(shards int) (*Store, *int64) {
	now := int64(1_000_000)
	s := New(Options{Shards: shards, Seed: 42, Clock: func() int64 { return now }})
	return s, &now
}

func TestShardOfKeyRouting(t *testing.T) {
	if got := ShardOfKey([]byte("anything"), 1); got != 0 {
		t.Fatalf("one shard must always route to 0, got %d", got)
	}
	// Stable: the same key maps to the same shard every time, and the byte
	// and string flavors agree.
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		a := ShardOfKey([]byte(k), 4)
		b := shardOfString(k, 4)
		if a != b {
			t.Fatalf("key %q: byte route %d != string route %d", k, a, b)
		}
		if a < 0 || a >= 4 {
			t.Fatalf("key %q routed out of range: %d", k, a)
		}
	}
	// Spread: 200 distinct keys must land on every one of 4 shards.
	hit := make([]int, 4)
	for i := 0; i < 200; i++ {
		hit[ShardOfKey([]byte(fmt.Sprintf("key-%d", i)), 4)]++
	}
	for si, n := range hit {
		if n == 0 {
			t.Fatalf("shard %d received no keys out of 200", si)
		}
	}
}

func TestShardedStoreMatchesSingleShard(t *testing.T) {
	// The same deterministic command script must leave byte-equal logical
	// keyspaces regardless of shard count.
	script := func(s *Store, now *int64) {
		rnd := rand.New(rand.NewSource(99))
		key := func() string { return fmt.Sprintf("k%d", rnd.Intn(30)) }
		for i := 0; i < 3000; i++ {
			switch rnd.Intn(14) {
			case 0, 1, 2:
				run(t, s, fmt.Sprintf("SET %s v%d", key(), rnd.Intn(1000)))
			case 3:
				run(t, s, "DEL "+key())
			case 4:
				run(t, s, "INCR counter:"+key())
			case 5:
				run(t, s, fmt.Sprintf("LPUSH list:%s m%d", key(), rnd.Intn(8)))
			case 6:
				run(t, s, fmt.Sprintf("HSET hash:%s f%d %d", key(), rnd.Intn(5), rnd.Intn(100)))
			case 7:
				run(t, s, fmt.Sprintf("SADD set:%s m%d", key(), rnd.Intn(8)))
			case 8:
				run(t, s, fmt.Sprintf("ZADD zset:%s %d m%d", key(), rnd.Intn(50), rnd.Intn(8)))
			case 9:
				run(t, s, fmt.Sprintf("MSET %s a %s b", key(), key()))
			case 10:
				run(t, s, fmt.Sprintf("RENAME %s renamed:%s", key(), key()))
			case 11:
				run(t, s, fmt.Sprintf("PEXPIRE %s 5", key()))
				*now += int64(rnd.Intn(3))
			case 12:
				run(t, s, fmt.Sprintf("APPEND str:%s x", key()))
			case 13:
				if rnd.Intn(50) == 0 {
					run(t, s, "FLUSHDB")
				}
			}
		}
		*now += 1000 // let every pending TTL lapse before fingerprinting
	}

	var ref map[string]string
	for _, shards := range []int{1, 2, 4} {
		s, now := shardedTestStore(shards)
		script(s, now)
		fp := storeFingerprint(s)
		if len(fp) == 0 {
			t.Fatalf("shards=%d: empty keyspace after script", shards)
		}
		if ref == nil {
			ref = fp
			continue
		}
		if len(fp) != len(ref) {
			t.Fatalf("shards=%d: %d keys, shards=1 had %d", shards, len(fp), len(ref))
		}
		for k, v := range ref {
			if fp[k] != v {
				t.Fatalf("shards=%d: divergence at %s: %q vs %q", shards, k, fp[k], v)
			}
		}
	}
}

// storeFingerprint captures the live keyspace logically (order-free).
func storeFingerprint(s *Store) map[string]string {
	out := map[string]string{}
	s.EachEntry(func(dbi int, key string, o *obj.Object, _ int64) bool {
		var v string
		switch o.Type {
		case obj.TString:
			v = "s:" + string(o.StringBytes())
		case obj.TList:
			var parts []string
			o.List().Each(func(e any) bool {
				parts = append(parts, string(e.([]byte)))
				return true
			})
			v = "l:" + strings.Join(parts, ",")
		default:
			// Containers: canonical RESP via sorted command output is
			// overkill here; cardinality plus type suffices for divergence
			// detection (full logical comparison lives in the cluster
			// equivalence tests).
			v = fmt.Sprintf("%s:%d", o.Type.String(), containerLen(o))
		}
		out[fmt.Sprintf("%d/%s", dbi, key)] = v
		return true
	})
	return out
}

func containerLen(o *obj.Object) int {
	switch o.Type {
	case obj.THash:
		n := 0
		o.HashEach(func(string, []byte) bool { n++; return true })
		return n
	case obj.TSet:
		n := 0
		o.SetEach(func(string) bool { n++; return true })
		return n
	case obj.TZSet:
		return len(o.ZRangeByRank(0, -1))
	}
	return 0
}

func TestShardedScanCoversAllShards(t *testing.T) {
	s, _ := shardedTestStore(4)
	want := map[string]bool{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key:%d", i)
		run(t, s, "SET "+k+" v")
		want[k] = true
	}
	got := map[string]bool{}
	cursor := "0"
	for rounds := 0; ; rounds++ {
		if rounds > 300 {
			t.Fatal("SCAN never terminated")
		}
		v := run(t, s, "SCAN "+cursor+" COUNT 7")
		if v.Type != resp.TypeArray || len(v.Array) != 2 {
			t.Fatalf("SCAN reply: %s", v.String())
		}
		for _, e := range v.Array[1].Array {
			got[string(e.Str)] = true
		}
		cursor = string(v.Array[0].Str)
		if cursor == "0" {
			break
		}
	}
	if len(got) != len(want) {
		t.Fatalf("SCAN returned %d distinct keys, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("SCAN missed %s", k)
		}
	}
}

func TestShardedCrossShardCommands(t *testing.T) {
	s, now := shardedTestStore(4)
	run(t, s, "MSET a 1 b 2 c 3 d 4")
	wantInt(t, s, "DBSIZE", 4)
	wantInt(t, s, "EXISTS a b c d nope", 4)
	if v := run(t, s, "KEYS *"); len(v.Array) != 4 {
		t.Fatalf("KEYS * = %s", v.String())
	}
	if v := run(t, s, "RANDOMKEY"); v.Null {
		t.Fatal("RANDOMKEY nil on non-empty sharded db")
	}
	wantInt(t, s, "DEL a b c d", 4)
	wantInt(t, s, "DBSIZE", 0)
	wantNil(t, s, "RANDOMKEY")

	run(t, s, "SET keep me")
	run(t, s, "SET gone soon")
	run(t, s, "PEXPIRE gone 10")
	*now += 50
	wantInt(t, s, "DBSIZE", 2) // expired key still physically present
	if v := run(t, s, "KEYS *"); len(v.Array) != 1 {
		t.Fatalf("KEYS must skip expired: %s", v.String())
	}
	run(t, s, "FLUSHALL")
	wantInt(t, s, "DBSIZE", 0)
}

func TestShardedActiveExpirePerShard(t *testing.T) {
	s, now := shardedTestStore(4)
	for i := 0; i < 200; i++ {
		run(t, s, fmt.Sprintf("SET k%d v", i))
		run(t, s, fmt.Sprintf("PEXPIRE k%d 10", i))
	}
	*now += 100
	total := 0
	for cycles := 0; cycles < 500 && total < 200; cycles++ {
		for si := 0; si < s.NumShards(); si++ {
			total += s.ActiveExpireCycleShard(si, 20)
		}
	}
	if total != 200 {
		t.Fatalf("per-shard expiry cycles reclaimed %d of 200 keys", total)
	}
	wantInt(t, s, "DBSIZE", 0)
}

// TestEachEntrySkipsLogicallyExpired is the RDB-dump regression: a key whose
// TTL already lapsed (but which lazy/active expiry has not yet reclaimed)
// must never be emitted into a dump.
func TestEachEntrySkipsLogicallyExpired(t *testing.T) {
	s, now := shardedTestStore(1)
	run(t, s, "SET live v")
	run(t, s, "SET dead v")
	run(t, s, "PEXPIRE dead 10")
	*now += 50
	var seen []string
	s.EachEntry(func(_ int, key string, _ *obj.Object, _ int64) bool {
		seen = append(seen, key)
		return true
	})
	if len(seen) != 1 || seen[0] != "live" {
		t.Fatalf("EachEntry emitted %v, want [live] only", seen)
	}
	// The key is still physically present — only the dump filter hides it.
	if s.DBSize(0) != 2 {
		t.Fatalf("DBSize = %d, want 2 (dead key not yet reclaimed)", s.DBSize(0))
	}
}

func TestCommandEachKey(t *testing.T) {
	keysOf := func(name string, args ...string) []string {
		argv := make([][]byte, 0, len(args)+1)
		argv = append(argv, []byte(name))
		for _, a := range args {
			argv = append(argv, []byte(a))
		}
		var out []string
		LookupCommandName(name).EachKey(argv, func(k []byte) { out = append(out, string(k)) })
		return out
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"set", []string{"k", "v"}, "k"},
		{"get", []string{"k"}, "k"},
		{"del", []string{"a", "b", "c"}, "a b c"},
		{"mset", []string{"a", "1", "b", "2"}, "a b"},
		{"mget", []string{"a", "b"}, "a b"},
		{"rename", []string{"src", "dst"}, "src dst"},
		{"rpoplpush", []string{"src", "dst"}, "src dst"},
		{"sinter", []string{"s1", "s2", "s3"}, "s1 s2 s3"},
		{"keys", []string{"*"}, ""},
		{"flushall", nil, ""},
	}
	for _, tc := range cases {
		got := strings.Join(keysOf(tc.name, tc.args...), " ")
		if got != tc.want {
			t.Errorf("%s %v keys = %q, want %q", tc.name, tc.args, got, tc.want)
		}
	}
}

// TestShardedRandomKeyWeightedBySize is the distribution regression for the
// cross-shard RANDOMKEY fan-in: the pick must be weighted by per-shard dict
// size, NOT a uniform pick over shards followed by a pick within the shard.
// The skew fixture puts exactly one key on its shard and hundreds on each of
// the others; uniform-over-shards would hand the lone key ~25% of draws
// (4 shards), weighted hands it ~1/total.
func TestShardedRandomKeyWeightedBySize(t *testing.T) {
	const shards = 4
	s, _ := shardedTestStore(shards)

	// One lone key on its shard, then bulk-load every OTHER shard.
	lone := "lone-0"
	loneShard := ShardOfKey([]byte(lone), shards)
	run(t, s, "SET "+lone+" v")
	bulk := 0
	for i := 0; bulk < 1500; i++ {
		k := fmt.Sprintf("bulk-%d", i)
		if ShardOfKey([]byte(k), shards) == loneShard {
			continue
		}
		run(t, s, "SET "+k+" v")
		bulk++
	}
	total := bulk + 1
	wantInt(t, s, "DBSIZE", int64(total))

	const draws = 12000
	loneHits := 0
	perShard := make([]int, shards)
	for i := 0; i < draws; i++ {
		v := run(t, s, "RANDOMKEY")
		if v.Null {
			t.Fatal("RANDOMKEY nil on non-empty db")
		}
		k := v.String()
		perShard[ShardOfKey([]byte(k), shards)]++
		if k == lone {
			loneHits++
		}
	}
	// Weighted expectation: draws/total ≈ 8 hits. Uniform-over-shards bias:
	// draws/shards = 3000. Anything near the latter is the bug.
	if loneHits >= draws/shards/10 { // 300: 37× the weighted expectation
		t.Fatalf("lone key drawn %d/%d times — RANDOMKEY is biased toward small shards (weighted expectation ≈ %d)",
			loneHits, draws, draws/total)
	}
	// Every populated shard participates.
	for si, n := range perShard {
		if si == loneShard {
			continue
		}
		if n == 0 {
			t.Fatalf("shard %d never drawn across %d RANDOMKEYs", si, draws)
		}
	}
}
