package store

import (
	"strconv"
	"strings"

	"skv/internal/obj"
	"skv/internal/resp"
)

// scanOptions parses the common [MATCH pattern] [COUNT n] tail.
func scanOptions(argv [][]byte) (pattern string, count int, errReply []byte) {
	pattern, count = "*", 10
	for i := 0; i < len(argv); i++ {
		switch strings.ToUpper(string(argv[i])) {
		case "MATCH":
			if i+1 >= len(argv) {
				return "", 0, syntaxErr()
			}
			pattern = string(argv[i+1])
			i++
		case "COUNT":
			if i+1 >= len(argv) {
				return "", 0, syntaxErr()
			}
			n, err := strconv.Atoi(string(argv[i+1]))
			if err != nil || n <= 0 {
				return "", 0, syntaxErr()
			}
			count = n
			i++
		default:
			return "", 0, syntaxErr()
		}
	}
	return pattern, count, nil
}

func scanReply(cursor uint64, items [][]byte) []byte {
	out := resp.AppendArrayHeader(nil, 2)
	out = resp.AppendBulkString(out, strconv.FormatUint(cursor, 10))
	out = resp.AppendArrayHeader(out, len(items))
	for _, it := range items {
		out = resp.AppendBulk(out, it)
	}
	return out
}

// scanShardBits is how much of the SCAN cursor's top end encodes the shard
// being walked. Dict scan cursors are reverse-bit bucket masks bounded by
// table size, so the top byte is free; with one shard the encoding adds
// nothing and the wire cursor is the legacy dict cursor verbatim.
const scanShardBits = 8

// cmdScan implements SCAN cursor [MATCH pattern] [COUNT n]: an incremental,
// rehash-safe keyspace iteration with the same guarantees as Redis SCAN.
// In sharded stores the cursor walks shard slices in order, carrying the
// current shard index in its top byte.
func cmdScan(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	cursor, err := strconv.ParseUint(string(argv[1]), 10, 64)
	if err != nil {
		return resp.AppendError(nil, "ERR invalid cursor"), false
	}
	pattern, count, errReply := scanOptions(argv[2:])
	if errReply != nil {
		return errReply, false
	}
	si := int(cursor >> (64 - scanShardBits))
	sub := cursor & (1<<(64-scanShardBits) - 1)
	if si >= s.shards {
		return resp.AppendError(nil, "ERR invalid cursor"), false
	}
	now := s.clock()
	var keys [][]byte
	for len(keys) < count {
		db := s.dbs[dbi][si]
		sub = db.dict.Scan(sub, func(k string, _ any) {
			if !db.expired(k, now) && GlobMatch(pattern, k) {
				keys = append(keys, []byte(k))
			}
		})
		if sub == 0 {
			si++
			if si >= s.shards {
				return scanReply(0, keys), false
			}
		}
	}
	return scanReply(uint64(si)<<(64-scanShardBits)|sub, keys), false
}

// objectScan factors HSCAN/SSCAN/ZSCAN: typed lookup plus cursor stepping.
func objectScan(s *Store, dbi int, argv [][]byte, typ obj.Type) ([]byte, bool) {
	o := s.lookup(dbi, string(argv[1]))
	if o != nil && o.Type != typ {
		return wrongType(), false
	}
	cursor, err := strconv.ParseUint(string(argv[2]), 10, 64)
	if err != nil {
		return resp.AppendError(nil, "ERR invalid cursor"), false
	}
	pattern, count, errReply := scanOptions(argv[3:])
	if errReply != nil {
		return errReply, false
	}
	if o == nil {
		return scanReply(0, nil), false
	}
	var items [][]byte
	for len(items) < count {
		switch typ {
		case obj.THash:
			cursor = o.HashScan(cursor, func(f string, v []byte) {
				if GlobMatch(pattern, f) {
					items = append(items, []byte(f), v)
				}
			})
		case obj.TSet:
			cursor = o.SetScan(cursor, func(m string) {
				if GlobMatch(pattern, m) {
					items = append(items, []byte(m))
				}
			})
		case obj.TZSet:
			cursor = o.ZSetScan(cursor, func(m string, score float64) {
				if GlobMatch(pattern, m) {
					items = append(items, []byte(m), []byte(obj.FormatScore(score)))
				}
			})
		}
		if cursor == 0 {
			break
		}
	}
	return scanReply(cursor, items), false
}

func cmdHScan(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return objectScan(s, dbi, argv, obj.THash)
}

func cmdSScan(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return objectScan(s, dbi, argv, obj.TSet)
}

func cmdZScan(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return objectScan(s, dbi, argv, obj.TZSet)
}

func init() {
	register("scan", cmdScan, -2, false, 0) // first arg is a cursor
	register("hscan", cmdHScan, -3, false, 1)
	register("sscan", cmdSScan, -3, false, 1)
	register("zscan", cmdZScan, -3, false, 1)
}
