package store

import (
	"strings"
	"testing"

	"skv/internal/resp"
)

func TestInfoSectionsFallback(t *testing.T) {
	s, _ := testStore()
	run(t, s, "SET k v")
	secs := s.InfoSections()
	if len(secs) != 2 || secs[0].Name != "Stats" || secs[1].Name != "Keyspace" {
		t.Fatalf("fallback sections = %+v", secs)
	}
	if !strings.HasPrefix(secs[0].Lines[0], "dirty:") {
		t.Fatalf("Stats lines = %v", secs[0].Lines)
	}
	if secs[1].Lines[0] != "db0:keys=1" {
		t.Fatalf("Keyspace lines = %v", secs[1].Lines)
	}
}

func TestInfoSectionsProvider(t *testing.T) {
	s, _ := testStore()
	s.InfoProvider = func() []InfoSection {
		return []InfoSection{
			{Name: "Server", Lines: []string{"server_name:test"}},
			{Name: "Replication", Lines: []string{"role:master"}},
		}
	}
	secs := s.InfoSections()
	// Provider sections first, then the store-owned Keyspace.
	if len(secs) != 3 || secs[0].Name != "Server" || secs[2].Name != "Keyspace" {
		t.Fatalf("provider sections = %+v", secs)
	}
}

func TestInfoSectionFiltering(t *testing.T) {
	s, _ := testStore()
	s.InfoProvider = func() []InfoSection {
		return []InfoSection{
			{Name: "Server", Lines: []string{"server_name:test"}},
			{Name: "Replication", Lines: []string{"role:master"}},
		}
	}

	v := run(t, s, "INFO replication")
	if v.Type != resp.TypeBulk {
		t.Fatalf("INFO replication type = %v", v.Type)
	}
	body := v.String()
	if !strings.Contains(body, "# Replication") || !strings.Contains(body, "role:master") {
		t.Fatalf("INFO replication body = %q", body)
	}
	if strings.Contains(body, "# Server") || strings.Contains(body, "# Keyspace") {
		t.Fatalf("INFO replication leaked other sections: %q", body)
	}

	// Case-insensitive.
	v = run(t, s, "INFO REPLICATION")
	if !strings.Contains(v.String(), "role:master") {
		t.Fatalf("INFO REPLICATION = %q", v.String())
	}

	// Default aliases return everything.
	for _, arg := range []string{"", " default", " all", " everything"} {
		v = run(t, s, "INFO"+arg)
		body = v.String()
		for _, want := range []string{"# Server", "# Replication", "# Keyspace"} {
			if !strings.Contains(body, want) {
				t.Fatalf("INFO%s missing %q: %q", arg, want, body)
			}
		}
	}
}

func TestInfoUnknownSectionAndArity(t *testing.T) {
	s, _ := testStore()
	wantErrContains(t, s, "INFO bogus", "unknown INFO section 'bogus'")
	wantErrContains(t, s, "INFO server extra", "wrong number of arguments")
}
