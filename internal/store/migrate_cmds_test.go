package store

import (
	"bytes"
	"fmt"
	"testing"

	"skv/internal/resp"
)

// exec runs a command with raw (possibly binary) arguments — the run()
// helper splits on spaces, which DUMP payloads may contain.
func exec(t *testing.T, s *Store, args ...string) resp.Value {
	t.Helper()
	argv := make([][]byte, len(args))
	for i, a := range args {
		argv[i] = []byte(a)
	}
	reply, _ := s.Exec(0, argv)
	var r resp.Reader
	r.Feed(reply)
	v, ok, err := r.ReadValue()
	if err != nil || !ok {
		t.Fatalf("exec %q: unparsable reply %q: %v", args[0], reply, err)
	}
	return v
}

// dump fetches a key's migration payload, failing the test when absent.
func dump(t *testing.T, s *Store, key string) string {
	t.Helper()
	v := exec(t, s, "DUMP", key)
	if v.Null {
		t.Fatalf("DUMP %s: key absent", key)
	}
	return string(v.Str)
}

// TestDumpRestoreRoundTripAllTypes: every value type survives the
// serialize→deserialize trip into a different store, with its TTL.
func TestDumpRestoreRoundTripAllTypes(t *testing.T) {
	src, _ := testStore()
	dst, _ := testStore()
	run(t, src, "SET str hello")
	run(t, src, "RPUSH list a b c a")
	run(t, src, "HSET hash f1 v1 f2 v2")
	run(t, src, "SADD set x y z")
	run(t, src, "SADD intset 3 1 2")
	run(t, src, "ZADD zset 2 b 1 a 3 c")
	run(t, src, "SET volatile v")
	run(t, src, "PEXPIRE volatile 60000")

	for _, key := range []string{"str", "list", "hash", "set", "intset", "zset", "volatile"} {
		p := dump(t, src, key)
		if v := exec(t, dst, "RESTORE", key, p); !v.IsOK() {
			t.Fatalf("RESTORE %s: %s", key, v.String())
		}
	}
	wantStr(t, dst, "GET str", "hello")
	if v := run(t, dst, "LRANGE list 0 -1"); fmt.Sprint(v.Array) != fmt.Sprint(run(t, src, "LRANGE list 0 -1").Array) {
		t.Fatalf("list diverged: %s", v.String())
	}
	wantStr(t, dst, "HGET hash f1", "v1")
	wantStr(t, dst, "HGET hash f2", "v2")
	wantInt(t, dst, "SCARD set", 3)
	wantInt(t, dst, "SISMEMBER intset 2", 1)
	wantInt(t, dst, "ZRANK zset c", 2)
	wantStr(t, dst, "ZSCORE zset b", "2")
	v := run(t, dst, "PTTL volatile")
	if v.Int <= 0 || v.Int > 60000 {
		t.Fatalf("restored TTL = %d", v.Int)
	}
}

// TestDumpIsCanonical: two hashes (and sets) with equal content but
// different insertion orders — hence different dict layouts — serialize to
// identical bytes. The MIGRATEDEL CAS depends on exactly this.
func TestDumpIsCanonical(t *testing.T) {
	a, _ := testStore()
	b, _ := testStore()
	run(t, a, "HSET h f1 v1 f2 v2 f3 v3")
	run(t, b, "HSET h f3 v3 f1 v1")
	run(t, b, "HSET h f2 v2")
	if dump(t, a, "h") != dump(t, b, "h") {
		t.Fatal("hash serialization depends on insertion order")
	}
	run(t, a, "SADD s alpha beta gamma")
	run(t, b, "SADD s gamma alpha")
	run(t, b, "SADD s beta")
	if dump(t, a, "s") != dump(t, b, "s") {
		t.Fatal("set serialization depends on insertion order")
	}
}

// TestRestoreModes: plain RESTORE refuses overwrites, REPLACE clobbers,
// IFEQ applies only when the key is absent or unchanged since prev.
func TestRestoreModes(t *testing.T) {
	s, _ := testStore()
	run(t, s, "SET k v1")
	p1 := dump(t, s, "k")
	run(t, s, "SET k v2")
	p2 := dump(t, s, "k")

	if v := exec(t, s, "RESTORE", "k", p1); !v.IsError() || !bytes.Contains(v.Str, []byte("BUSYKEY")) {
		t.Fatalf("RESTORE over a live key: %s", v.String())
	}
	if v := exec(t, s, "RESTORE", "k", p1, "REPLACE"); !v.IsOK() {
		t.Fatalf("RESTORE REPLACE: %s", v.String())
	}
	wantStr(t, s, "GET k", "v1")

	// IFEQ with a stale prev: the key holds v1, prev says v2 → diverged.
	if v := exec(t, s, "RESTORE", "k", p2, "IFEQ", p2); v.Int != 0 {
		t.Fatalf("IFEQ on diverged key applied: %s", v.String())
	}
	wantStr(t, s, "GET k", "v1")
	// IFEQ with the matching prev applies.
	if v := exec(t, s, "RESTORE", "k", p2, "IFEQ", p1); v.Int != 1 {
		t.Fatalf("IFEQ on matching key skipped: %s", v.String())
	}
	wantStr(t, s, "GET k", "v2")
	// IFEQ on an absent key applies regardless of prev.
	if v := exec(t, s, "RESTORE", "fresh", p1, "IFEQ", ""); v.Int != 1 {
		t.Fatalf("IFEQ on absent key: %s", v.String())
	}
	wantStr(t, s, "GET fresh", "v1")

	if v := exec(t, s, "RESTORE", "x", "garbage"); !v.IsError() {
		t.Fatalf("garbage payload accepted: %s", v.String())
	}
	if v := exec(t, s, "RESTORE", "x", p1, "NOSUCHMODE"); !v.IsError() {
		t.Fatalf("unknown mode accepted: %s", v.String())
	}
}

// TestMigrateDelCAS: the delete commits only when the value is unchanged
// since the DUMP the payload came from; expiry-only changes do not count
// (relative expiries replicate against each node's own clock, so they are
// excluded from the comparison by design).
func TestMigrateDelCAS(t *testing.T) {
	s, _ := testStore()
	run(t, s, "SET k v1")
	p := dump(t, s, "k")

	// Value changed since the dump: CAS fails, key survives.
	run(t, s, "SET k v2")
	if v := exec(t, s, "MIGRATEDEL", "k", p); v.Int != 0 {
		t.Fatalf("MIGRATEDEL of a modified key: %s", v.String())
	}
	wantStr(t, s, "GET k", "v2")

	// Fresh dump commits.
	p2 := dump(t, s, "k")
	if v := exec(t, s, "MIGRATEDEL", "k", p2); v.Int != 1 {
		t.Fatalf("MIGRATEDEL of an unchanged key: %s", v.String())
	}
	wantNil(t, s, "GET k")
	// Absent key: nothing to commit.
	if v := exec(t, s, "MIGRATEDEL", "k", p2); v.Int != 0 {
		t.Fatalf("MIGRATEDEL of an absent key: %s", v.String())
	}

	// Expiry-only drift is not divergence.
	run(t, s, "SET t v")
	pt := dump(t, s, "t")
	run(t, s, "PEXPIRE t 60000")
	if v := exec(t, s, "MIGRATEDEL", "t", pt); v.Int != 1 {
		t.Fatalf("MIGRATEDEL after expiry-only change: %s", v.String())
	}
}

// TestKeysWhere: sorted, filtered, limited — the GETKEYSINSLOT backend.
func TestKeysWhere(t *testing.T) {
	s, _ := testStore()
	for _, k := range []string{"b1", "a1", "c1", "a2"} {
		run(t, s, "SET "+k+" v")
	}
	got := s.KeysWhere(0, 0, func(k string) bool { return k[0] == 'a' })
	if len(got) != 2 || got[0] != "a1" || got[1] != "a2" {
		t.Fatalf("KeysWhere = %v", got)
	}
	if got := s.KeysWhere(0, 1, func(string) bool { return true }); len(got) != 1 || got[0] != "a1" {
		t.Fatalf("limited KeysWhere = %v", got)
	}
}
