package store

import (
	"strconv"
	"strings"

	"skv/internal/obj"
	"skv/internal/resp"
)

// expireAtGeneric implements EXPIREAT/PEXPIREAT: absolute deadlines.
func expireAtGeneric(s *Store, dbi int, argv [][]byte, unitMS int64) ([]byte, bool) {
	at, err := strconv.ParseInt(string(argv[2]), 10, 64)
	if err != nil {
		return notInt(), false
	}
	key := string(argv[1])
	if s.lookup(dbi, key) == nil {
		return resp.AppendInt(nil, 0), false
	}
	atMS := at * unitMS
	if atMS <= s.clock() {
		s.deleteKey(dbi, key)
		return resp.AppendInt(nil, 1), true
	}
	s.setExpire(dbi, key, atMS)
	return resp.AppendInt(nil, 1), true
}

func cmdExpireAt(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return expireAtGeneric(s, dbi, argv, 1000)
}

func cmdPExpireAt(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	return expireAtGeneric(s, dbi, argv, 1)
}

// cmdGetDel returns the value and deletes the key (GETDEL, Redis 6.2).
func cmdGetDel(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupString(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendNullBulk(nil), false
	}
	reply := resp.AppendBulk(nil, o.StringBytes())
	s.deleteKey(dbi, string(argv[1]))
	return reply, true
}

// cmdIncrByFloat adds a float to a string value (INCRBYFLOAT).
func cmdIncrByFloat(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	delta, okF := parseScore(argv[2])
	if !okF {
		return notFloat(), false
	}
	key := string(argv[1])
	o, okType := lookupString(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	var cur float64
	if o != nil {
		f, err := strconv.ParseFloat(string(o.StringBytes()), 64)
		if err != nil {
			return notFloat(), false
		}
		cur = f
	}
	cur += delta
	formatted := []byte(obj.FormatScore(cur))
	s.setKey(dbi, key, obj.NewString(formatted))
	return resp.AppendBulk(nil, formatted), true
}

// cmdZCount counts sorted-set members with score in [min, max].
func cmdZCount(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	min, ok1 := parseScore(argv[2])
	max, ok2 := parseScore(argv[3])
	if !ok1 || !ok2 {
		return resp.AppendError(nil, "ERR min or max is not a float"), false
	}
	o, okType := lookupZSet(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendInt(nil, 0), false
	}
	return resp.AppendInt(nil, int64(len(o.ZRangeByScore(min, max)))), false
}

// cmdZRevRank reports the 0-based descending rank.
func cmdZRevRank(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	o, okType := lookupZSet(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return resp.AppendNullBulk(nil), false
	}
	r, found := o.ZRank(string(argv[2]))
	if !found {
		return resp.AppendNullBulk(nil), false
	}
	return resp.AppendInt(nil, int64(o.ZLen()-1-r)), false
}

// cmdLTrim trims a list to the inclusive index window.
func cmdLTrim(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	start, err1 := strconv.Atoi(string(argv[2]))
	stop, err2 := strconv.Atoi(string(argv[3]))
	if err1 != nil || err2 != nil {
		return notInt(), false
	}
	key := string(argv[1])
	o, okType := lookupList(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	if o == nil {
		return ok(), false
	}
	l := o.List()
	n := l.Len()
	if start < 0 {
		start = n + start
		if start < 0 {
			start = 0
		}
	}
	if stop < 0 {
		stop = n + stop
	}
	if stop >= n {
		stop = n - 1
	}
	if start > stop || start >= n {
		// Empty result: drop the key entirely.
		s.deleteKey(dbi, key)
		return ok(), true
	}
	for i := 0; i < start; i++ {
		l.PopHead()
	}
	for l.Len() > stop-start+1 {
		l.PopTail()
	}
	s.Dirty++
	return ok(), true
}

// cmdSMove atomically moves a member between sets.
func cmdSMove(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	src, okType := lookupSet(s, dbi, string(argv[1]))
	if !okType {
		return wrongType(), false
	}
	dst, okType := lookupSet(s, dbi, string(argv[2]))
	if !okType {
		return wrongType(), false
	}
	member := string(argv[3])
	if src == nil || !src.SetContains(member) {
		return resp.AppendInt(nil, 0), false
	}
	src.SetRemove(member)
	if src.SetLen() == 0 {
		s.deleteKey(dbi, string(argv[1]))
	}
	if dst == nil {
		dst = obj.NewSet(s.seed())
		s.setKey(dbi, string(argv[2]), dst)
	}
	dst.SetAdd(member)
	s.Dirty++
	return resp.AppendInt(nil, 1), true
}

// cmdHSetNX sets a hash field only if absent.
func cmdHSetNX(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	key := string(argv[1])
	o, okType := lookupHash(s, dbi, key)
	if !okType {
		return wrongType(), false
	}
	if o != nil {
		if _, exists := o.HashGet(string(argv[2])); exists {
			return resp.AppendInt(nil, 0), false
		}
	}
	if o == nil {
		o = obj.NewHash(s.seed())
		s.setKey(dbi, key, o)
	}
	o.HashSet(string(argv[2]), append([]byte(nil), argv[3]...))
	s.Dirty++
	return resp.AppendInt(nil, 1), true
}

// cmdSInterStore computes an intersection into a destination key.
func cmdSInterStore(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	sets, errReply := setOp(s, dbi, argv[2:])
	if errReply != nil {
		return errReply, false
	}
	var members []string
	for m := range sets[0] {
		in := true
		for _, other := range sets[1:] {
			if !other[m] {
				in = false
				break
			}
		}
		if in {
			members = append(members, m)
		}
	}
	dstKey := string(argv[1])
	s.deleteKey(dbi, dstKey)
	if len(members) == 0 {
		return resp.AppendInt(nil, 0), true
	}
	dst := obj.NewSet(s.seed())
	for _, m := range members {
		dst.SetAdd(m)
	}
	s.setKey(dbi, dstKey, dst)
	return resp.AppendInt(nil, int64(len(members))), true
}

func init() {
	register("expireat", cmdExpireAt, 3, true, 1)
	register("pexpireat", cmdPExpireAt, 3, true, 1)
	register("getdel", cmdGetDel, 2, true, 1)
	register("incrbyfloat", cmdIncrByFloat, 3, true, 1)
	register("zcount", cmdZCount, 4, false, 1)
	register("zrevrank", cmdZRevRank, 3, false, 1)
	register("ltrim", cmdLTrim, 4, true, 1)
	register("smove", cmdSMove, 4, true, 1)
	register("hsetnx", cmdHSetNX, 4, true, 1)
	register("sinterstore", cmdSInterStore, -3, true, 1)
	register("object", cmdObject, 3, false, 2) // OBJECT <subcommand> <key>
}

// cmdObject implements OBJECT ENCODING|REFCOUNT (debug introspection).
func cmdObject(s *Store, dbi int, argv [][]byte) ([]byte, bool) {
	sub := strings.ToLower(string(argv[1]))
	o := s.lookup(dbi, string(argv[2]))
	if o == nil {
		return resp.AppendError(nil, "ERR no such key"), false
	}
	switch sub {
	case "encoding":
		return resp.AppendBulkString(nil, o.Enc.String()), false
	case "refcount":
		return resp.AppendInt(nil, 1), false
	}
	return syntaxErr(), false
}
