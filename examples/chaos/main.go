// Chaos: run the scripted failure scenarios from the chaos harness
// (internal/cluster) end to end and print each scenario's event trace plus
// its convergence verdict. Every scenario drives the SmartNIC failure
// detector (§III-D) through a different failure shape — master restart
// after failover, slave crash/recovery, a flapping endpoint, a NIC↔slave
// partition, and lossy links — using the deterministic fault-injection
// plane in internal/fabric. Same seeds, same traces, every run.
package main

import (
	"fmt"

	"skv/internal/cluster"
)

func main() {
	failed := 0
	for _, s := range cluster.ChaosScenarios() {
		fmt.Printf("== %s (slaves=%d clients=%d seed=%d) ==\n", s.Name, s.Slaves, s.Clients, s.Seed)
		c, h, err := cluster.RunScenario(s)
		if h != nil {
			fmt.Print(h.TraceString())
		}
		if err != nil {
			failed++
			fmt.Printf("NOT CONVERGED: %v\n\n", err)
			continue
		}
		var clientErrs uint64
		for _, cl := range c.Clients {
			clientErrs += cl.Stats().ErrReplies
		}
		fmt.Printf("converged: master offset %d, %d valid slaves, %d failovers, %d restores, %d client errors\n\n",
			c.Master.ReplOffset(), c.NicKV.ValidSlaves(), c.NicKV.Failovers, c.NicKV.MasterRestores, clientErrs)
	}
	if failed > 0 {
		fmt.Printf("%d scenario(s) failed to converge\n", failed)
		return
	}
	fmt.Println("all scenarios converged")
}
