// min-slaves: exercise SKV's write gates (§III-C/§III-D). With
// min-slaves=2, the master keeps accepting writes while two slaves answer
// Nic-KV's probes — and starts refusing them (error replies to the client)
// once a slave crash leaves too few available replicas. When the slave
// recovers and is folded back in, writes resume.
package main

import (
	"fmt"

	"skv/internal/cluster"
	"skv/internal/core"
	"skv/internal/sim"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.MinSlaves = 2 // the paper's min-slaves parameter
	c := cluster.Build(cluster.Config{
		Kind: cluster.KindSKV, Slaves: 2, Clients: 4, Seed: 99, SKV: cfg,
	})
	if !c.AwaitReplication(5 * sim.Second) {
		panic("replication did not converge")
	}
	// Let the first Nic-KV status report reach the master's write gate.
	c.Run(c.Eng.Now().Add(2 * sim.Second))
	c.StartClients()

	errsBefore := func() uint64 {
		var n uint64
		for _, cl := range c.Clients {
			n += cl.Stats().ErrReplies
		}
		return n
	}

	base := c.Eng.Now()
	snapshot := func(label string) {
		fmt.Printf("t=%4.1fs  %-28s valid slaves: %d   error replies so far: %d\n",
			sim.Duration(c.Eng.Now()-base).Seconds(), label,
			c.NicKV.ValidSlaves(), errsBefore())
	}

	c.Eng.At(base.Add(1*sim.Second), func() { snapshot("steady state") })
	c.Eng.At(base.Add(2*sim.Second), func() {
		c.Slaves[1].Crash()
		snapshot("slave1 crashes")
	})
	c.Eng.At(base.Add(6*sim.Second), func() { snapshot("below min-slaves: writes fail") })
	c.Eng.At(base.Add(7*sim.Second), func() {
		c.Slaves[1].Recover()
		snapshot("slave1 recovers")
	})
	c.Eng.At(base.Add(11*sim.Second), func() { snapshot("writes accepted again") })
	c.Eng.Run(base.Add(12 * sim.Second))

	fmt.Println("\nwhile the cluster was below min-slaves, every write got:")
	fmt.Println("  (error) NOREPLICAS Not enough available slaves to accept writes.")
}
