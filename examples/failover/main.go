// Failover: exercise SKV's SmartNIC-resident failure detector (§III-D).
// A slave's Host-KV process crashes under write load: Nic-KV's 1-second
// probes notice within waiting-time, flag the node invalid, and keep
// replicating to the survivors; the client never sees an error. Then the
// master itself crashes: Nic-KV promotes a slave, and when the original
// master returns it is restored and the stand-in demoted.
package main

import (
	"fmt"

	"skv/internal/cluster"
	"skv/internal/core"
	"skv/internal/sim"
)

func main() {
	c := cluster.Build(cluster.Config{
		Kind: cluster.KindSKV, Slaves: 3, Clients: 4, Seed: 13,
		SKV: core.DefaultConfig(),
	})
	if !c.AwaitReplication(5 * sim.Second) {
		panic("replication did not converge")
	}
	c.StartClients()
	base := c.Eng.Now()
	at := func(d sim.Duration, fn func()) { c.Eng.At(base.Add(d), fn) }
	report := func(label string) {
		fmt.Printf("t=%4.1fs  %-42s valid slaves: %d  master valid: %v  promoted: %q\n",
			sim.Duration(c.Eng.Now()-base).Seconds(), label,
			c.NicKV.ValidSlaves(), c.NicKV.MasterValid(), c.NicKV.PromotedID())
	}

	fmt.Println("== phase 1: slave failure under load ==")
	at(1*sim.Second, func() { c.Slaves[1].Crash(); report("slave1 Host-KV crashes") })
	at(4500*sim.Millisecond, func() { report("(after probe + waiting-time)") })
	at(6*sim.Second, func() { c.Slaves[1].Recover(); report("slave1 recovers") })
	at(9*sim.Second, func() { report("(after next probe round)") })
	c.Eng.Run(base.Add(10 * sim.Second))

	var errs uint64
	for _, cl := range c.Clients {
		errs += cl.Stats().ErrReplies
	}
	fmt.Printf("client error replies so far: %d (clients never noticed)\n", errs)

	fmt.Println("\n== phase 2: master failure and restore ==")
	base = c.Eng.Now()
	at(1*sim.Second, func() { c.Master.Crash(); report("master Host-KV crashes") })
	at(5*sim.Second, func() { report("(Nic-KV promoted a slave)") })
	at(6*sim.Second, func() { c.Master.Recover(); report("original master recovers") })
	at(9*sim.Second, func() { report("(restored; stand-in demoted)") })
	c.Eng.Run(base.Add(10 * sim.Second))

	// Final consistency check once everything settles.
	c.Eng.Run(c.Eng.Now().Add(2 * sim.Second))
	fmt.Printf("\nfinal keyspace sizes  master: %d  slaves:", c.Master.Store().DBSize(0))
	for _, s := range c.Slaves {
		fmt.Printf(" %d", s.Store().DBSize(0))
	}
	fmt.Println()
}
