// Replication offload: build the paper's deployment — one master with a
// BlueField-class SmartNIC, three slaves, eight closed-loop clients — and
// show the core SKV mechanism at work: the master posts ONE work request
// per write while Nic-KV fans the command out to every slave in the
// background.
package main

import (
	"fmt"

	"skv/internal/cluster"
	"skv/internal/core"
	"skv/internal/sim"
)

func main() {
	fmt.Println("building 1 master (+SmartNIC) + 3 slaves + 8 clients, RDMA fabric ...")

	for _, kind := range []cluster.Kind{cluster.KindRDMA, cluster.KindSKV} {
		cfg := cluster.Config{Kind: kind, Slaves: 3, Clients: 8, Seed: 7}
		if kind == cluster.KindSKV {
			cfg.SKV = core.DefaultConfig()
		}
		c := cluster.Build(cfg)
		if !c.AwaitReplication(5 * sim.Second) {
			panic("replication did not converge")
		}
		res := c.Measure(50*sim.Millisecond, 300*sim.Millisecond)
		fmt.Printf("\n%s\n", res)
		fmt.Printf("  master core busy: %.0f%%\n", res.MasterUtil*100)
		if kind == cluster.KindSKV {
			fmt.Printf("  SmartNIC core busy: %.0f%% (replication runs here now)\n", res.NicUtil*100)
			fmt.Printf("  replication requests master→NIC: %d (one per write)\n", c.HostKV.ReplReqsSent)
			fmt.Printf("  commands fanned out NIC→slaves:  %d (%d slaves)\n", c.NicKV.StreamSent, len(c.Slaves))
		}
		// Show that the slaves actually converged with the master.
		c.Eng.Run(c.Eng.Now().Add(200 * sim.Millisecond))
		fmt.Printf("  master keys: %d | slave keys:", c.Master.Store().DBSize(0))
		for _, s := range c.Slaves {
			fmt.Printf(" %d", s.Store().DBSize(0))
		}
		fmt.Println()
	}

	fmt.Println("\nSKV posts one WR per write regardless of fan-out; RDMA-Redis posts one per slave —")
	fmt.Println("that CPU difference is the paper's +14% throughput / −21% tail latency (Fig 11).")
}
