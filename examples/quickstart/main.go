// Quickstart: embed the SKV storage engine directly, then serve it over a
// real TCP socket and talk to it with a RESP client — no simulation
// involved.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"skv/internal/netserver"
	"skv/internal/resp"
	"skv/internal/store"
)

func main() {
	// ---- 1. The engine as a library ----
	st := store.New(store.Options{Seed: 42, Clock: func() int64 { return time.Now().UnixMilli() }})

	exec := func(args ...string) resp.Value {
		argv := make([][]byte, len(args))
		for i, a := range args {
			argv[i] = []byte(a)
		}
		reply, _ := st.Exec(0, argv)
		var r resp.Reader
		r.Feed(reply)
		v, _, _ := r.ReadValue()
		return v
	}

	fmt.Println("embedded engine:")
	fmt.Println("  SET user:1 ada     →", exec("SET", "user:1", "ada").String())
	fmt.Println("  GET user:1         →", exec("GET", "user:1").String())
	fmt.Println("  RPUSH queue a b c  →", exec("RPUSH", "queue", "a", "b", "c").String())
	fmt.Println("  LRANGE queue 0 -1  →", exec("LRANGE", "queue", "0", "-1").String())
	fmt.Println("  ZADD board 9 ada   →", exec("ZADD", "board", "9", "ada", "7", "bob").String())
	fmt.Println("  ZRANGE board 0 -1  →", exec("ZRANGE", "board", "0", "-1", "WITHSCORES").String())
	fmt.Println("  INCR hits ×3       →", exec("INCR", "hits").String(),
		exec("INCR", "hits").String(), exec("INCR", "hits").String())

	// ---- 2. The same engine over real TCP ----
	srv, err := netserver.New(netserver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	do := func(args ...string) resp.Value {
		if _, err := conn.Write(resp.EncodeCommand(args...)); err != nil {
			log.Fatal(err)
		}
		var r resp.Reader
		buf := make([]byte, 4096)
		for {
			v, ok, err := r.ReadValue()
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				return v
			}
			n, err := conn.Read(buf)
			if err != nil {
				log.Fatal(err)
			}
			r.Feed(buf[:n])
		}
	}

	fmt.Printf("\nRESP over TCP (%s):\n", ln.Addr())
	fmt.Println("  PING               →", do("PING").String())
	fmt.Println("  SET greeting hello →", do("SET", "greeting", "hello").String())
	fmt.Println("  APPEND greeting !  →", do("APPEND", "greeting", "!").String())
	fmt.Println("  GET greeting       →", do("GET", "greeting").String())
	fmt.Println("  SETEX temp 10 v    →", do("SETEX", "temp", "10", "v").String())
	fmt.Println("  TTL temp           →", do("TTL", "temp").String())
}
