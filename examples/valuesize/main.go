// Value-size sweep: reproduce the Fig 12 experiment interactively — SET
// throughput of SKV vs RDMA-Redis as the value grows from cache-line-sized
// to many kilobytes. The offload advantage persists across sizes until the
// wire itself dominates.
package main

import (
	"fmt"

	"skv/internal/cluster"
	"skv/internal/core"
	"skv/internal/sim"
)

func main() {
	fmt.Println("SET throughput, 8 clients, 3 slaves (kops/s)")
	fmt.Printf("%-8s  %-11s  %-8s  %s\n", "value", "rdma-redis", "skv", "gain")
	for _, size := range []int{16, 64, 256, 1024, 4096, 16384, 65536} {
		row := map[cluster.Kind]float64{}
		for _, kind := range []cluster.Kind{cluster.KindRDMA, cluster.KindSKV} {
			cfg := cluster.Config{Kind: kind, Slaves: 3, Clients: 8, Seed: 21, ValueSize: size}
			if kind == cluster.KindSKV {
				cfg.SKV = core.DefaultConfig()
			}
			c := cluster.Build(cfg)
			if !c.AwaitReplication(5 * sim.Second) {
				panic("replication did not converge")
			}
			res := c.Measure(50*sim.Millisecond, 200*sim.Millisecond)
			row[kind] = res.Throughput
		}
		fmt.Printf("%-8s  %-11.1f  %-8.1f  %+.1f%%\n",
			fmt.Sprintf("%dB", size),
			row[cluster.KindRDMA]/1000, row[cluster.KindSKV]/1000,
			(row[cluster.KindSKV]/row[cluster.KindRDMA]-1)*100)
	}
}
