// Command skv-cli is a minimal RESP client for skv-server (or any RESP
// server).
//
//	skv-cli -addr localhost:6379                 # interactive REPL
//	skv-cli -addr localhost:6379 SET key value   # one-shot
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"skv/internal/resp"
)

func main() {
	addr := flag.String("addr", "localhost:6379", "server address")
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "connect:", err)
		os.Exit(1)
	}
	defer conn.Close()

	if args := flag.Args(); len(args) > 0 {
		v, err := roundTrip(conn, args)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(render(v))
		return
	}

	in := bufio.NewScanner(os.Stdin)
	fmt.Printf("%s> ", *addr)
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" {
			fmt.Printf("%s> ", *addr)
			continue
		}
		if strings.EqualFold(line, "exit") || strings.EqualFold(line, "quit") {
			roundTrip(conn, []string{"QUIT"})
			return
		}
		v, err := roundTrip(conn, strings.Fields(line))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(render(v))
		fmt.Printf("%s> ", *addr)
	}
}

func roundTrip(conn net.Conn, argv []string) (resp.Value, error) {
	if _, err := conn.Write(resp.EncodeCommand(argv...)); err != nil {
		return resp.Value{}, err
	}
	var r resp.Reader
	buf := make([]byte, 64<<10)
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, ok, err := r.ReadValue()
		if err != nil {
			return resp.Value{}, err
		}
		if ok {
			return v, nil
		}
		conn.SetReadDeadline(deadline)
		n, err := conn.Read(buf)
		if err != nil {
			return resp.Value{}, err
		}
		r.Feed(buf[:n])
	}
}

func render(v resp.Value) string {
	switch v.Type {
	case resp.TypeError:
		return "(error) " + v.String()
	case resp.TypeInteger:
		return "(integer) " + v.String()
	case resp.TypeBulk:
		if v.Null {
			return "(nil)"
		}
		return fmt.Sprintf("%q", v.String())
	default:
		return v.String()
	}
}
