// Command skv-server runs the SKV storage engine as a real RESP server
// over TCP — usable with cmd/skv-cli or any RESP client for the
// implemented command set.
//
//	skv-server -addr :6379 -rdb dump.rdb
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"skv/internal/netserver"
)

func main() {
	addr := flag.String("addr", ":6379", "listen address")
	rdbPath := flag.String("rdb", "", "RDB snapshot path (loaded at start, written by SAVE and on shutdown)")
	dbs := flag.Int("databases", 16, "number of databases")
	flag.Parse()

	s, err := netserver.New(netserver.Options{NumDBs: *dbs, RDBPath: *rdbPath})
	if err != nil {
		log.Fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "shutting down")
		s.Close()
		os.Exit(0)
	}()

	log.Printf("skv-server listening on %s", *addr)
	if err := s.ListenAndServe(*addr); err != nil {
		log.Fatal(err)
	}
}
