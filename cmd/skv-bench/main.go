// Command skv-bench regenerates the paper's evaluation figures on the
// simulated cluster. With no flags it runs everything in paper order.
//
//	skv-bench                  # all experiments
//	skv-bench -exp fig11       # one experiment
//	skv-bench -list            # available experiment ids
//	skv-bench -smoke           # everything at tiny scale (CI sanity run)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"skv/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	smoke := flag.Bool("smoke", false, "run with tiny measurement windows (sanity check, not figures)")
	flag.Parse()

	if *smoke {
		bench.SetSmoke()
	}
	if *list {
		fmt.Println(strings.Join(bench.IDs(), "\n"))
		return
	}
	if *exp != "" {
		e := bench.ByID(*exp)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
			os.Exit(1)
		}
		fmt.Println(e.String())
		return
	}
	for _, e := range bench.All() {
		fmt.Println(e.String())
	}
}
